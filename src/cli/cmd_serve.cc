// `rwdom serve`: a long-lived TCP query server over one warm
// QueryContext — the build-once/query-many economics of `rwdom batch`,
// made available to many concurrent clients. The substrate is loaded
// once at startup; every connection speaks the JSONL batch-script
// protocol and gets responses bit-identical to cold
// `rwdom <command> --format=json` runs. SIGINT/SIGTERM or a
// {"command": "shutdown"} request shut down gracefully (in-flight
// requests finish and are answered).
#include <csignal>

#include <atomic>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "cli/query_line.h"
#include "persist/artifact_cache.h"
#include "server/server.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace rwdom {
namespace {

// SIGINT/SIGTERM route through NotifyShutdown, the only QueryServer
// entry point that is async-signal-safe (it just writes one byte to the
// server's wake pipe).
std::atomic<QueryServer*> g_signal_server{nullptr};

void HandleShutdownSignal(int /*signo*/) {
  QueryServer* server = g_signal_server.load();
  if (server != nullptr) server->NotifyShutdown();
}

class ScopedShutdownSignals {
 public:
  explicit ScopedShutdownSignals(QueryServer* server) {
    g_signal_server.store(server);
    struct sigaction action = {};
    action.sa_handler = HandleShutdownSignal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, &previous_int_);
    sigaction(SIGTERM, &action, &previous_term_);
  }
  ~ScopedShutdownSignals() {
    sigaction(SIGINT, &previous_int_, nullptr);
    sigaction(SIGTERM, &previous_term_, nullptr);
    g_signal_server.store(nullptr);
  }

 private:
  struct sigaction previous_int_ = {};
  struct sigaction previous_term_ = {};
};

Status RunServe(const CommandEnv& env) {
  ServerOptions options;
  RWDOM_ASSIGN_OR_RETURN(int64_t port,
                         IntFlagOr(env.invocation, "port", 7117));
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("--port must be in [0, 65535]");
  }
  options.port = static_cast<int>(port);
  options.host = FlagOr(env.invocation, "bind", "127.0.0.1");
  RWDOM_ASSIGN_OR_RETURN(int64_t max_connections,
                         IntFlagOr(env.invocation, "max_connections", 64));
  if (max_connections < 1 || max_connections > 65536) {
    return Status::InvalidArgument(
        "--max_connections must be in [1, 65536]");
  }
  options.max_connections = static_cast<int>(max_connections);
  // The global --threads (or RWDOM_THREADS) doubles as the serving
  // width — worker-pool size or event-loop shard count, per --io: one
  // knob for "how parallel is this process". Within a dispatch, nested
  // compute parallelism shares the one process-wide pool.
  options.threads = NumThreads();
  RWDOM_ASSIGN_OR_RETURN(int64_t request_timeout_ms,
                         IntFlagOr(env.invocation, "request_timeout_ms", 0));
  if (request_timeout_ms < 0) {
    return Status::InvalidArgument("--request_timeout_ms must be >= 0");
  }
  options.request_timeout_ms = static_cast<int>(request_timeout_ms);
  RWDOM_ASSIGN_OR_RETURN(
      int64_t write_timeout_ms,
      IntFlagOr(env.invocation, "write_timeout_ms", 30'000));
  if (write_timeout_ms < 0) {
    return Status::InvalidArgument("--write_timeout_ms must be >= 0");
  }
  options.write_timeout_ms = static_cast<int>(write_timeout_ms);
  RWDOM_ASSIGN_OR_RETURN(
      int64_t max_request_bytes,
      IntFlagOr(env.invocation, "max_request_bytes",
                static_cast<int64_t>(LineReader::kDefaultMaxLineBytes)));
  if (max_request_bytes < 64) {
    return Status::InvalidArgument("--max_request_bytes must be >= 64");
  }
  options.max_request_bytes = static_cast<size_t>(max_request_bytes);
  RWDOM_ASSIGN_OR_RETURN(int64_t max_queue_depth,
                         IntFlagOr(env.invocation, "max_queue_depth", 0));
  if (max_queue_depth < 0) {
    return Status::InvalidArgument("--max_queue_depth must be >= 0");
  }
  options.max_queue_depth = static_cast<int>(max_queue_depth);
  RWDOM_ASSIGN_OR_RETURN(int64_t retry_after_ms,
                         IntFlagOr(env.invocation, "retry_after_ms", 250));
  if (retry_after_ms < 0) {
    return Status::InvalidArgument("--retry_after_ms must be >= 0");
  }
  options.retry_after_ms = static_cast<int>(retry_after_ms);
  const std::string io = FlagOr(env.invocation, "io", "");
  if (!io.empty()) {
    RWDOM_ASSIGN_OR_RETURN(options.io, ParseIoMode(io));
  }
  RWDOM_ASSIGN_OR_RETURN(
      int64_t write_buffer_bytes,
      IntFlagOr(env.invocation, "write_buffer_bytes",
                static_cast<int64_t>(options.write_buffer_bytes)));
  if (write_buffer_bytes < 1024) {
    return Status::InvalidArgument("--write_buffer_bytes must be >= 1024");
  }
  options.write_buffer_bytes = static_cast<size_t>(write_buffer_bytes);
  RWDOM_ASSIGN_OR_RETURN(int64_t max_cache_bytes,
                         IntFlagOr(env.invocation, "max_cache_bytes", 0));
  if (max_cache_bytes < 0) {
    return Status::InvalidArgument("--max_cache_bytes must be >= 0");
  }
  const std::string port_file = FlagOr(env.invocation, "port_file", "");
  const std::string cache_dir = FlagOr(env.invocation, "cache_dir", "");
  if (!cache_dir.empty()) options.capabilities.push_back("cache");

  RWDOM_ASSIGN_OR_RETURN(LoadedSubstrate loaded,
                         ResolveSubstrate(env.invocation));
  QueryContext context(std::move(loaded));
  // Budget set before recovery, so adoption respects it from byte one.
  context.set_max_cache_bytes(max_cache_bytes);

  // Declared after the context and before the server, so destruction
  // runs server (workers join, no more builds) -> cache (writer drains)
  // -> context — every order-sensitive handoff is scoped.
  std::optional<ArtifactCache> cache;
  int64_t recovered = 0;
  if (!cache_dir.empty()) {
    cache.emplace(cache_dir);
    // Warm start: adopt every compatible snapshot before the listener
    // is up, so even the first query finds the index without building.
    RWDOM_ASSIGN_OR_RETURN(recovered, cache->RecoverInto(context));
    cache->AttachCheckpointHook(context);
  }

  QueryServer server(
      &context,
      [&context](const std::string& line, std::string* response) -> Status {
        std::ostringstream out;
        RWDOM_RETURN_IF_ERROR(
            ExecuteQueryLine(line, context, OutputFormat::kJson, out));
        *response = out.str();
        while (!response->empty() && response->back() == '\n') {
          response->pop_back();
        }
        return Status::OK();
      },
      options);
  // Handlers go in before the listener is up (and before --port_file
  // announces readiness), so there is no window where a Ctrl-C is
  // dropped; NotifyShutdown is valid from construction.
  ScopedShutdownSignals signals(&server);
  RWDOM_RETURN_IF_ERROR(server.Start());

  if (!port_file.empty()) {
    // Written only after the listener is live, so "the file exists"
    // means "you can connect" — the handshake scripts and tests use.
    std::ofstream file(port_file, std::ios::trunc);
    if (!file) {
      server.Shutdown();
      return Status::IoError("cannot write --port_file: " + port_file);
    }
    file << server.port() << "\n";
  }

  env.out << StrFormat(
      "serving %s substrate on %s:%d (io=%s, threads=%d, "
      "max_connections=%d, protocol_version=%d)\n",
      context.substrate().kind().c_str(), options.host.c_str(),
      server.port(), IoModeName(options.io), options.threads,
      options.max_connections, kProtocolVersion);
  if (cache.has_value()) {
    const PersistenceInfo persistence = context.persistence();
    env.out << StrFormat(
        "cache: %s (snapshots recovered=%lld, rejected=%lld)\n",
        cache_dir.c_str(), static_cast<long long>(recovered),
        static_cast<long long>(persistence.snapshots_rejected));
  }
  env.out << "protocol: one JSONL request per line (see `rwdom help "
             "serve`); Ctrl-C or {\"command\": \"shutdown\"} to stop\n";
  env.out.flush();

  server.Wait();

  // Publish queued checkpoints before the summary so its counters are
  // the final ones for this run.
  if (cache.has_value()) cache->Flush();
  const ServerStats stats = server.stats();
  if (env.format == OutputFormat::kJson) {
    JsonWriter json;
    json.BeginObject();
    json.Key("serve_summary").BeginObject();
    json.Key("substrate").String(context.substrate().kind());
    json.Key("queries_ok").Int(stats.queries_ok);
    json.Key("queries_error").Int(stats.queries_error);
    json.Key("connections_accepted").Int(stats.connections_accepted);
    json.Key("connections_rejected").Int(stats.connections_rejected);
    json.Key("graph_loads").Int(1);
    json.Key("index_builds").Int(stats.index_builds);
    json.Key("index_hits").Int(stats.index_hits);
    json.Key("index_recovered").Int(stats.index_recovered);
    json.Key("cached_bytes").Int(stats.cached_bytes);
    json.Key("cache_dir").String(stats.persistence.cache_dir);
    json.Key("snapshots_recovered").Int(stats.persistence.snapshots_recovered);
    json.Key("snapshots_rejected").Int(stats.persistence.snapshots_rejected);
    json.Key("checkpoints_written").Int(stats.persistence.checkpoints_written);
    json.EndObject();
    json.EndObject();
    env.out << json.ToString() << "\n";
  } else {
    env.out << StrFormat(
        "serve: %lld queries (ok=%lld, errors=%lld) over %lld connections "
        "on one %s substrate (graph loads=1, index builds=%lld, "
        "index hits=%lld, index recovered=%lld, cached bytes=%lld)\n",
        static_cast<long long>(stats.queries_ok + stats.queries_error),
        static_cast<long long>(stats.queries_ok),
        static_cast<long long>(stats.queries_error),
        static_cast<long long>(stats.connections_accepted),
        context.substrate().kind().c_str(),
        static_cast<long long>(stats.index_builds),
        static_cast<long long>(stats.index_hits),
        static_cast<long long>(stats.index_recovered),
        static_cast<long long>(stats.cached_bytes));
    if (!stats.persistence.cache_dir.empty()) {
      env.out << StrFormat(
          "cache: %s (recovered=%lld, rejected=%lld, checkpoints=%lld)\n",
          stats.persistence.cache_dir.c_str(),
          static_cast<long long>(stats.persistence.snapshots_recovered),
          static_cast<long long>(stats.persistence.snapshots_rejected),
          static_cast<long long>(stats.persistence.checkpoints_written));
    }
  }
  return Status::OK();
}

}  // namespace

CommandDef MakeServeCommand() {
  CommandDef def;
  def.name = "serve";
  def.summary = "serve JSONL queries over TCP from one warm engine";
  def.usage =
      "rwdom serve (--graph=FILE | --dataset=NAME) [--port=7117] "
      "[--max_connections=64] [--threads=N] [--cache_dir=DIR]\n       "
      "request lines (same "
      "as batch scripts): {\"command\": \"select|evaluate|knn|cover|"
      "stats\", \"flags\": {...}}\n       admin requests: {\"command\": "
      "\"server_stats\"} and {\"command\": \"shutdown\"}";
  def.flags = WithSubstrateFlags({
      {"port", "N", "TCP port to listen on; 0 picks an ephemeral port "
                    "(default 7117)"},
      {"bind", "ADDR", "bind address (default 127.0.0.1; use 0.0.0.0 to "
                       "expose beyond localhost)"},
      {"max_connections", "N",
       "open-connection cap; excess connections are refused (default 64)"},
      {"request_timeout_ms", "N",
       "per-request deadline; late requests answer a DeadlineExceeded "
       "error (default 0 = unlimited)"},
      {"write_timeout_ms", "N",
       "drop a connection whose client stops reading responses for this "
       "long (default 30000; 0 = unlimited)"},
      {"max_request_bytes", "N",
       "per-request-line byte cap; overlong lines answer InvalidArgument "
       "(default 1048576)"},
      {"max_queue_depth", "N",
       "shed connections (Unavailable + retry_after_ms) when more than N "
       "wait for a worker (default 0 = unbounded)"},
      {"retry_after_ms", "N",
       "backoff hint carried in shed/refusal errors (default 250)"},
      {"io", "MODE",
       "serving core: 'epoll' (non-blocking event loop with pipelining "
       "and backpressure; Linux default) or 'threaded' (blocking worker "
       "pool); RWDOM_IO overrides the default"},
      {"write_buffer_bytes", "N",
       "epoll mode: per-connection cap on buffered response bytes; a "
       "peer that stops draining past it is paused (backpressure) "
       "(default 262144)"},
      {"max_cache_bytes", "N",
       "index-cache memory budget: LRU-evict under pressure, refuse "
       "builds that can never fit (default 0 = unlimited)"},
      {"port_file", "FILE", "write the bound port here once listening "
                            "(handshake for scripts/tests)"},
      {"cache_dir", "DIR",
       "persistent index cache: recover matching snapshots at boot "
       "(warm start) and checkpoint new builds in the background"},
  });
  def.handler = RunServe;
  return def;
}

}  // namespace rwdom
