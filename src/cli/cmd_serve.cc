// `rwdom serve`: a long-lived TCP query server over warm
// QueryContexts — the build-once/query-many economics of `rwdom batch`,
// made available to many concurrent clients. Substrates are loaded
// once at startup; every connection speaks the JSONL batch-script
// protocol and gets responses bit-identical to cold
// `rwdom <command> --format=json` runs. SIGINT/SIGTERM or a
// {"command": "shutdown"} request shut down gracefully (in-flight
// requests finish and are answered).
//
// Multi-graph tenancy (protocol v3): besides the default substrate
// (--graph=FILE | --dataset=NAME), repeatable
// `--graph NAME=PATH[,weighted][,directed]` flags register named
// tenants; request lines pick theirs with `"graph": "NAME"`. All
// tenants share one --max_cache_bytes budget (global LRU), and with
// --cache_dir each named tenant persists under its own subdirectory
// (the default tenant keeps the v2 flat layout).
#include <csignal>

#include <atomic>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "cli/query_line.h"
#include "persist/artifact_cache.h"
#include "server/server.h"
#include "service/graph_registry.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace rwdom {
namespace {

/// One `--graph NAME=PATH[,weighted][,directed]` tenant spec.
struct TenantSpec {
  std::string name;
  std::string path;
  SubstrateOptions options;
};

Result<TenantSpec> ParseTenantSpec(const std::string& value) {
  const size_t eq = value.find('=');
  TenantSpec spec;
  spec.name = value.substr(0, eq);
  if (!IsValidGraphName(spec.name)) {
    return Status::InvalidArgument(
        "invalid graph name \"" + spec.name + "\" in --graph=" + value +
        " (use [A-Za-z0-9_.-]+)");
  }
  std::string rest = value.substr(eq + 1);
  size_t start = 0;
  bool first = true;
  while (start <= rest.size()) {
    size_t comma = rest.find(',', start);
    if (comma == std::string::npos) comma = rest.size();
    const std::string token = rest.substr(start, comma - start);
    if (first) {
      spec.path = token;
      first = false;
    } else if (token == "weighted") {
      spec.options.weights = SubstrateWeights::kForce;
    } else if (token == "directed") {
      spec.options.directed = true;
    } else {
      return Status::InvalidArgument(
          "unknown tenant option \"" + token + "\" in --graph=" + value +
          " (use weighted and/or directed)");
    }
    start = comma + 1;
  }
  if (spec.path.empty()) {
    return Status::InvalidArgument("tenant spec needs a path: --graph=" +
                                   value);
  }
  return spec;
}

// SIGINT/SIGTERM route through NotifyShutdown, the only QueryServer
// entry point that is async-signal-safe (it just writes one byte to the
// server's wake pipe).
std::atomic<QueryServer*> g_signal_server{nullptr};

void HandleShutdownSignal(int /*signo*/) {
  QueryServer* server = g_signal_server.load();
  if (server != nullptr) server->NotifyShutdown();
}

class ScopedShutdownSignals {
 public:
  explicit ScopedShutdownSignals(QueryServer* server) {
    g_signal_server.store(server);
    struct sigaction action = {};
    action.sa_handler = HandleShutdownSignal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, &previous_int_);
    sigaction(SIGTERM, &action, &previous_term_);
  }
  ~ScopedShutdownSignals() {
    sigaction(SIGINT, &previous_int_, nullptr);
    sigaction(SIGTERM, &previous_term_, nullptr);
    g_signal_server.store(nullptr);
  }

 private:
  struct sigaction previous_int_ = {};
  struct sigaction previous_term_ = {};
};

Status RunServe(const CommandEnv& env) {
  ServerOptions options;
  RWDOM_ASSIGN_OR_RETURN(int64_t port,
                         IntFlagOr(env.invocation, "port", 7117));
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("--port must be in [0, 65535]");
  }
  options.port = static_cast<int>(port);
  options.host = FlagOr(env.invocation, "bind", "127.0.0.1");
  RWDOM_ASSIGN_OR_RETURN(int64_t max_connections,
                         IntFlagOr(env.invocation, "max_connections", 64));
  if (max_connections < 1 || max_connections > 65536) {
    return Status::InvalidArgument(
        "--max_connections must be in [1, 65536]");
  }
  options.max_connections = static_cast<int>(max_connections);
  // The global --threads (or RWDOM_THREADS) doubles as the serving
  // width — worker-pool size or event-loop shard count, per --io: one
  // knob for "how parallel is this process". Within a dispatch, nested
  // compute parallelism shares the one process-wide pool.
  options.threads = NumThreads();
  RWDOM_ASSIGN_OR_RETURN(int64_t request_timeout_ms,
                         IntFlagOr(env.invocation, "request_timeout_ms", 0));
  if (request_timeout_ms < 0) {
    return Status::InvalidArgument("--request_timeout_ms must be >= 0");
  }
  options.request_timeout_ms = static_cast<int>(request_timeout_ms);
  RWDOM_ASSIGN_OR_RETURN(
      int64_t write_timeout_ms,
      IntFlagOr(env.invocation, "write_timeout_ms", 30'000));
  if (write_timeout_ms < 0) {
    return Status::InvalidArgument("--write_timeout_ms must be >= 0");
  }
  options.write_timeout_ms = static_cast<int>(write_timeout_ms);
  RWDOM_ASSIGN_OR_RETURN(
      int64_t max_request_bytes,
      IntFlagOr(env.invocation, "max_request_bytes",
                static_cast<int64_t>(LineReader::kDefaultMaxLineBytes)));
  if (max_request_bytes < 64) {
    return Status::InvalidArgument("--max_request_bytes must be >= 64");
  }
  options.max_request_bytes = static_cast<size_t>(max_request_bytes);
  RWDOM_ASSIGN_OR_RETURN(int64_t max_queue_depth,
                         IntFlagOr(env.invocation, "max_queue_depth", 0));
  if (max_queue_depth < 0) {
    return Status::InvalidArgument("--max_queue_depth must be >= 0");
  }
  options.max_queue_depth = static_cast<int>(max_queue_depth);
  RWDOM_ASSIGN_OR_RETURN(int64_t retry_after_ms,
                         IntFlagOr(env.invocation, "retry_after_ms", 250));
  if (retry_after_ms < 0) {
    return Status::InvalidArgument("--retry_after_ms must be >= 0");
  }
  options.retry_after_ms = static_cast<int>(retry_after_ms);
  const std::string io = FlagOr(env.invocation, "io", "");
  if (!io.empty()) {
    RWDOM_ASSIGN_OR_RETURN(options.io, ParseIoMode(io));
  }
  RWDOM_ASSIGN_OR_RETURN(
      int64_t write_buffer_bytes,
      IntFlagOr(env.invocation, "write_buffer_bytes",
                static_cast<int64_t>(options.write_buffer_bytes)));
  if (write_buffer_bytes < 1024) {
    return Status::InvalidArgument("--write_buffer_bytes must be >= 1024");
  }
  options.write_buffer_bytes = static_cast<size_t>(write_buffer_bytes);
  RWDOM_ASSIGN_OR_RETURN(int64_t max_cache_bytes,
                         IntFlagOr(env.invocation, "max_cache_bytes", 0));
  if (max_cache_bytes < 0) {
    return Status::InvalidArgument("--max_cache_bytes must be >= 0");
  }
  const std::string port_file = FlagOr(env.invocation, "port_file", "");
  const std::string cache_dir = FlagOr(env.invocation, "cache_dir", "");
  if (!cache_dir.empty()) options.capabilities.push_back("cache");

  // Partition the repeated --graph occurrences: values with '=' are
  // named tenant specs (NAME=PATH[,weighted][,directed]); a plain value
  // is the v2 spelling of the default tenant's edge list.
  std::vector<TenantSpec> tenant_specs;
  std::string default_graph_file;
  for (const std::string& value :
       RepeatedFlagValues(env.invocation, "graph")) {
    if (value.find('=') != std::string::npos) {
      RWDOM_ASSIGN_OR_RETURN(TenantSpec spec, ParseTenantSpec(value));
      tenant_specs.push_back(std::move(spec));
    } else {
      default_graph_file = value;
    }
  }
  // The default tenant resolves through the unchanged substrate path
  // (--graph=FILE | --dataset=NAME), with the tenant specs stripped so
  // they cannot masquerade as an edge-list path.
  CliInvocation default_invocation = env.invocation;
  if (default_graph_file.empty()) {
    default_invocation.flags.erase("graph");
  } else {
    default_invocation.flags["graph"] = default_graph_file;
  }
  if (default_invocation.flags.count("graph") == 0 &&
      default_invocation.flags.count("dataset") == 0) {
    return Status::InvalidArgument(
        "serve needs a default substrate (--graph=FILE or --dataset=NAME) "
        "besides named --graph NAME=PATH tenants");
  }
  RWDOM_ASSIGN_OR_RETURN(LoadedSubstrate loaded,
                         ResolveSubstrate(default_invocation));

  GraphRegistry registry;
  // Budget set before any tenant loads or recovery, so every adoption
  // and build respects the fleet-wide cap from byte one.
  registry.set_max_cache_bytes(max_cache_bytes);
  RWDOM_RETURN_IF_ERROR(registry.Add(
      kDefaultGraphName, std::make_unique<QueryContext>(std::move(loaded))));
  for (const TenantSpec& spec : tenant_specs) {
    RWDOM_ASSIGN_OR_RETURN(LoadedSubstrate tenant_loaded,
                           LoadSubstrate(spec.path, spec.options));
    RWDOM_RETURN_IF_ERROR(registry.Add(
        spec.name,
        std::make_unique<QueryContext>(std::move(tenant_loaded))));
  }

  // Declared after the registry and before the server, so destruction
  // runs server (workers join, no more builds) -> caches (writers
  // drain) -> contexts — every order-sensitive handoff is scoped. The
  // default tenant keeps the v2 flat layout at the cache_dir root;
  // named tenants get their own subdirectory.
  std::vector<std::unique_ptr<ArtifactCache>> caches;
  int64_t recovered = 0;
  if (!cache_dir.empty()) {
    for (const ResolvedGraph& graph : registry.Graphs()) {
      const std::string tenant_dir = *graph.name == kDefaultGraphName
                                         ? cache_dir
                                         : cache_dir + "/" + *graph.name;
      caches.push_back(std::make_unique<ArtifactCache>(tenant_dir));
      // Warm start: adopt every compatible snapshot before the listener
      // is up, so even the first query finds the index without building.
      RWDOM_ASSIGN_OR_RETURN(int64_t adopted,
                             caches.back()->RecoverInto(*graph.context));
      recovered += adopted;
      caches.back()->AttachCheckpointHook(*graph.context);
    }
  }

  QueryServer server(&registry, ExecuteRequestToJsonLine, options);
  // Handlers go in before the listener is up (and before --port_file
  // announces readiness), so there is no window where a Ctrl-C is
  // dropped; NotifyShutdown is valid from construction.
  ScopedShutdownSignals signals(&server);
  RWDOM_RETURN_IF_ERROR(server.Start());

  if (!port_file.empty()) {
    // Written only after the listener is live, so "the file exists"
    // means "you can connect" — the handshake scripts and tests use.
    std::ofstream file(port_file, std::ios::trunc);
    if (!file) {
      server.Shutdown();
      return Status::IoError("cannot write --port_file: " + port_file);
    }
    file << server.port() << "\n";
  }

  env.out << StrFormat(
      "serving %s substrate on %s:%d (io=%s, threads=%d, "
      "max_connections=%d, protocol_version=%d)\n",
      registry.default_context()->substrate().kind().c_str(),
      options.host.c_str(), server.port(), IoModeName(options.io),
      options.threads, options.max_connections, kProtocolVersion);
  if (registry.multi_graph()) {
    std::string names;
    for (const std::string& name : registry.GraphNames()) {
      if (!names.empty()) names += ", ";
      names += name;
    }
    env.out << StrFormat("graphs: %s (%d tenants, shared cache budget)\n",
                         names.c_str(), static_cast<int>(registry.size()));
  }
  if (!caches.empty()) {
    int64_t rejected = 0;
    for (const ResolvedGraph& graph : registry.Graphs()) {
      rejected += graph.context->persistence().snapshots_rejected;
    }
    env.out << StrFormat(
        "cache: %s (snapshots recovered=%lld, rejected=%lld)\n",
        cache_dir.c_str(), static_cast<long long>(recovered),
        static_cast<long long>(rejected));
  }
  env.out << "protocol: one JSONL request per line (see `rwdom help "
             "serve`); Ctrl-C or {\"command\": \"shutdown\"} to stop\n";
  env.out.flush();

  server.Wait();

  // Publish queued checkpoints before the summary so its counters are
  // the final ones for this run.
  for (const auto& cache : caches) cache->Flush();
  const ServerStats stats = server.stats();
  if (env.format == OutputFormat::kJson) {
    JsonWriter json;
    json.BeginObject();
    json.Key("serve_summary").BeginObject();
    json.Key("substrate")
        .String(registry.default_context()->substrate().kind());
    json.Key("queries_ok").Int(stats.queries_ok);
    json.Key("queries_error").Int(stats.queries_error);
    json.Key("connections_accepted").Int(stats.connections_accepted);
    json.Key("connections_rejected").Int(stats.connections_rejected);
    json.Key("graph_loads").Int(stats.graph_loads);
    json.Key("index_builds").Int(stats.index_builds);
    json.Key("index_hits").Int(stats.index_hits);
    json.Key("index_recovered").Int(stats.index_recovered);
    json.Key("cached_bytes").Int(stats.cached_bytes);
    json.Key("cache_dir").String(stats.persistence.cache_dir);
    json.Key("snapshots_recovered").Int(stats.persistence.snapshots_recovered);
    json.Key("snapshots_rejected").Int(stats.persistence.snapshots_rejected);
    json.Key("checkpoints_written").Int(stats.persistence.checkpoints_written);
    json.EndObject();
    json.EndObject();
    env.out << json.ToString() << "\n";
  } else {
    // The single-graph wording is the v2 line byte for byte; multi-graph
    // runs spell out the tenant count instead of "one ... substrate".
    const std::string substrate_phrase =
        registry.multi_graph()
            ? StrFormat("%d substrates", static_cast<int>(registry.size()))
            : StrFormat(
                  "one %s substrate",
                  registry.default_context()->substrate().kind().c_str());
    env.out << StrFormat(
        "serve: %lld queries (ok=%lld, errors=%lld) over %lld connections "
        "on %s (graph loads=%lld, index builds=%lld, "
        "index hits=%lld, index recovered=%lld, cached bytes=%lld)\n",
        static_cast<long long>(stats.queries_ok + stats.queries_error),
        static_cast<long long>(stats.queries_ok),
        static_cast<long long>(stats.queries_error),
        static_cast<long long>(stats.connections_accepted),
        substrate_phrase.c_str(),
        static_cast<long long>(stats.graph_loads),
        static_cast<long long>(stats.index_builds),
        static_cast<long long>(stats.index_hits),
        static_cast<long long>(stats.index_recovered),
        static_cast<long long>(stats.cached_bytes));
    if (!stats.persistence.cache_dir.empty()) {
      env.out << StrFormat(
          "cache: %s (recovered=%lld, rejected=%lld, checkpoints=%lld)\n",
          stats.persistence.cache_dir.c_str(),
          static_cast<long long>(stats.persistence.snapshots_recovered),
          static_cast<long long>(stats.persistence.snapshots_rejected),
          static_cast<long long>(stats.persistence.checkpoints_written));
    }
  }
  return Status::OK();
}

}  // namespace

CommandDef MakeServeCommand() {
  CommandDef def;
  def.name = "serve";
  def.summary = "serve JSONL queries over TCP from warm engines";
  def.usage =
      "rwdom serve (--graph=FILE | --dataset=NAME) "
      "[--graph NAME=PATH[,weighted][,directed] ...] [--port=7117] "
      "[--max_connections=64] [--threads=N] [--cache_dir=DIR]\n       "
      "request lines (same "
      "as batch scripts): {\"command\": \"select|evaluate|knn|cover|"
      "stats\", \"flags\": {...}, \"graph\": \"NAME\"}\n       "
      "(\"graph\" optional: omitted lines hit the default substrate)\n"
      "       admin requests: {\"command\": "
      "\"server_stats\"} (optional \"graph\" filter) and {\"command\": "
      "\"shutdown\"}";
  def.flags = WithSubstrateFlags({
      {"port", "N", "TCP port to listen on; 0 picks an ephemeral port "
                    "(default 7117)"},
      {"bind", "ADDR", "bind address (default 127.0.0.1; use 0.0.0.0 to "
                       "expose beyond localhost)"},
      {"max_connections", "N",
       "open-connection cap; excess connections are refused (default 64)"},
      {"request_timeout_ms", "N",
       "per-request deadline; late requests answer a DeadlineExceeded "
       "error (default 0 = unlimited)"},
      {"write_timeout_ms", "N",
       "drop a connection whose client stops reading responses for this "
       "long (default 30000; 0 = unlimited)"},
      {"max_request_bytes", "N",
       "per-request-line byte cap; overlong lines answer InvalidArgument "
       "(default 1048576)"},
      {"max_queue_depth", "N",
       "shed connections (Unavailable + retry_after_ms) when more than N "
       "wait for a worker (default 0 = unbounded)"},
      {"retry_after_ms", "N",
       "backoff hint carried in shed/refusal errors (default 250)"},
      {"io", "MODE",
       "serving core: 'epoll' (non-blocking event loop with pipelining "
       "and backpressure; Linux default) or 'threaded' (blocking worker "
       "pool); RWDOM_IO overrides the default"},
      {"write_buffer_bytes", "N",
       "epoll mode: per-connection cap on buffered response bytes; a "
       "peer that stops draining past it is paused (backpressure) "
       "(default 262144)"},
      {"max_cache_bytes", "N",
       "index-cache memory budget, global across every served graph: "
       "LRU-evict fleet-wide under pressure, refuse builds that can "
       "never fit (default 0 = unlimited)"},
      {"port_file", "FILE", "write the bound port here once listening "
                            "(handshake for scripts/tests)"},
      {"cache_dir", "DIR",
       "persistent index cache: recover matching snapshots at boot "
       "(warm start) and checkpoint new builds in the background"},
  });
  def.handler = RunServe;
  return def;
}

}  // namespace rwdom
