// The `rwdom` command-line tool, as a library so commands are
// unit-testable.
//
// The CLI is a thin adapter over the service layer: each command is a
// handler file (cli/cmd_*.cc) registered in the data-driven command
// registry (cli/command_registry.h) that parses flags into a typed
// service request (service/requests.h) and executes it against a
// QueryContext. One-shot invocations build a fresh context per run;
// `rwdom batch <script.jsonl>` executes many requests against a single
// warm context, amortizing graph load and index construction.
//
// Commands (see `rwdom help` and `rwdom help COMMAND` for flags):
//   datasets, stats, generate, select, evaluate, cover, knn, batch, help
//
// Global flags: --threads=N, --format=text|json.
#ifndef RWDOM_CLI_CLI_H_
#define RWDOM_CLI_CLI_H_

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace rwdom {

/// Parsed command line: one command word, positional arguments (used by
/// `help COMMAND` and `batch SCRIPT`), plus --key=value flags.
struct CliInvocation {
  std::string command;
  std::vector<std::string> positionals;
  /// Last occurrence wins — the lookup every single-valued flag uses.
  std::map<std::string, std::string> flags;
  /// Every --key=value occurrence in source order, for repeatable flags
  /// (`serve --graph NAME=PATH --graph ...`, `route --backend ...`).
  /// Parallel to `flags`; commands that repeat a flag read this.
  std::vector<std::pair<std::string, std::string>> ordered_flags;
};

/// Parses argv[1..); rejects malformed flags (--flag without =value).
/// Positional arguments are collected; commands that take none reject
/// them at validation time.
Result<CliInvocation> ParseCliArgs(int argc, const char* const* argv);

/// Dispatches one invocation through the command registry, writing
/// command output to `out`.
Status RunCliCommand(const CliInvocation& invocation, std::ostream& out);

/// Convenience entry point for main(): parse + run + report errors to
/// stderr; returns the process exit code.
int CliMain(int argc, const char* const* argv);

/// The global help text (also printed for `rwdom help`), generated from
/// the command registry.
std::string CliUsage();

}  // namespace rwdom

#endif  // RWDOM_CLI_CLI_H_
