// The `rwdom` command-line tool, as a library so commands are unit-testable.
//
// Commands:
//   rwdom datasets
//   rwdom stats    (--graph=FILE | --dataset=NAME) [--data_dir=DIR]
//   rwdom generate --model=ba|plc|er|ws|cl --n=N [--m=M] [...] --out=FILE
//   rwdom select   (--graph=FILE | --dataset=NAME) --algorithm=NAME --k=K
//                  [--L=6] [--R=100] [--seed=42] [--save_index=FILE]
//   rwdom evaluate (--graph=FILE | --dataset=NAME) --seeds=1,2,3
//                  [--L=6] [--R=500] [--seed=42]
//   rwdom cover    (--graph=FILE | --dataset=NAME) --alpha=0.9
//                  [--L=6] [--R=100] [--seed=42]
#ifndef RWDOM_CLI_CLI_H_
#define RWDOM_CLI_CLI_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace rwdom {

/// Parsed command line: one command word plus --key=value flags.
struct CliInvocation {
  std::string command;
  std::map<std::string, std::string> flags;
};

/// Parses argv[1..); rejects positional arguments after the command and
/// malformed flags.
Result<CliInvocation> ParseCliArgs(int argc, const char* const* argv);

/// Dispatches one invocation, writing human-readable output to `out`.
Status RunCliCommand(const CliInvocation& invocation, std::ostream& out);

/// Convenience entry point for main(): parse + run + report errors to
/// stderr; returns the process exit code.
int CliMain(int argc, const char* const* argv);

/// The help text (also printed for `rwdom help`).
std::string CliUsage();

}  // namespace rwdom

#endif  // RWDOM_CLI_CLI_H_
