#include "cli/flag_parsing.h"

#include <limits>
#include <utility>

#include "harness/dataset_registry.h"
#include "util/strings.h"

namespace rwdom {

std::string FlagOr(const CliInvocation& invocation, const std::string& key,
                   const std::string& fallback) {
  auto it = invocation.flags.find(key);
  return it == invocation.flags.end() ? fallback : it->second;
}

std::vector<std::string> RepeatedFlagValues(const CliInvocation& invocation,
                                            const std::string& key) {
  std::vector<std::string> values;
  for (const auto& [name, value] : invocation.ordered_flags) {
    if (name == key) values.push_back(value);
  }
  if (values.empty()) {
    auto it = invocation.flags.find(key);
    if (it != invocation.flags.end()) values.push_back(it->second);
  }
  return values;
}

Result<int64_t> IntFlagOr(const CliInvocation& invocation,
                          const std::string& key, int64_t fallback) {
  auto it = invocation.flags.find(key);
  if (it == invocation.flags.end()) return fallback;
  RWDOM_ASSIGN_OR_RETURN(int64_t value, ParseInt64(it->second));
  return value;
}

Result<double> DoubleFlagOr(const CliInvocation& invocation,
                            const std::string& key, double fallback) {
  auto it = invocation.flags.find(key);
  if (it == invocation.flags.end()) return fallback;
  RWDOM_ASSIGN_OR_RETURN(double value, ParseDouble(it->second));
  return value;
}

Result<bool> BoolFlagOr(const CliInvocation& invocation,
                        const std::string& key, bool fallback) {
  auto it = invocation.flags.find(key);
  if (it == invocation.flags.end()) return fallback;
  const std::string& value = it->second;
  if (value == "1" || value == "true" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "no") return false;
  return Status::InvalidArgument("--" + key +
                                 " wants true/false, got: " + value);
}

namespace {

// The one list both WithSubstrateFlags and IsSubstrateFlag derive from,
// so a new substrate flag cannot be known to validation yet invisible
// to the batch-line rejection (which would silently ignore it).
const std::vector<FlagDef>& SubstrateFlagDefs() {
  static const std::vector<FlagDef>* const kFlags = new std::vector<FlagDef>{
      {"graph", "FILE", "edge list to load (weights/3rd column "
                        "autodetected)"},
      {"dataset", "NAME", "Table-2 dataset name (append -w / -wd for "
                          "weighted variants)"},
      {"data_dir", "DIR", "where real dataset edge lists live "
                          "(default: data)"},
      {"directed", "0|1", "load --graph as a digraph (arc list)"},
      {"weighted", "auto|yes|no", "override weight-column autodetection"},
  };
  return *kFlags;
}

}  // namespace

std::vector<FlagDef> WithSubstrateFlags(std::vector<FlagDef> extra) {
  std::vector<FlagDef> flags = SubstrateFlagDefs();
  flags.insert(flags.end(), std::make_move_iterator(extra.begin()),
               std::make_move_iterator(extra.end()));
  return flags;
}

bool IsSubstrateFlag(const std::string& name) {
  for (const FlagDef& def : SubstrateFlagDefs()) {
    if (def.name == name) return true;
  }
  return false;
}

Result<int32_t> CheckedInt32Flag(const std::string& name, int64_t value,
                                 int64_t min_value) {
  if (value < min_value ||
      value > std::numeric_limits<int32_t>::max()) {
    return Status::InvalidArgument(
        StrFormat("--%s must be in [%lld, 2^31)", name.c_str(),
                  static_cast<long long>(min_value)));
  }
  return static_cast<int32_t>(value);
}

namespace {

// Parses --weighted=auto|yes|no (several spellings accepted).
Result<SubstrateWeights> ParseWeightedFlag(const CliInvocation& invocation) {
  const std::string weighted = FlagOr(invocation, "weighted", "auto");
  if (weighted == "auto") return SubstrateWeights::kAuto;
  if (weighted == "yes" || weighted == "true" || weighted == "1") {
    return SubstrateWeights::kForce;
  }
  if (weighted == "no" || weighted == "false" || weighted == "0") {
    return SubstrateWeights::kIgnore;
  }
  return Status::InvalidArgument("--weighted wants auto/yes/no, got: " +
                                 weighted);
}

}  // namespace

Result<LoadedSubstrate> ResolveSubstrate(const CliInvocation& invocation) {
  const bool has_graph = invocation.flags.count("graph") > 0;
  const bool has_dataset = invocation.flags.count("dataset") > 0;
  if (has_graph == has_dataset) {
    return Status::InvalidArgument(
        "exactly one of --graph=FILE or --dataset=NAME is required");
  }
  if (has_graph) {
    SubstrateOptions options;
    RWDOM_ASSIGN_OR_RETURN(options.directed,
                           BoolFlagOr(invocation, "directed", false));
    RWDOM_ASSIGN_OR_RETURN(options.weights, ParseWeightedFlag(invocation));
    if (options.directed && options.weights == SubstrateWeights::kIgnore) {
      return Status::InvalidArgument(
          "--directed needs the weighted substrate; drop --weighted=no");
    }
    return LoadSubstrate(invocation.flags.at("graph"), options);
  }
  // Datasets carry directedness in the variant name, so --directed=1 is
  // rejected; --weighted passes through (it overrides autodetection when a
  // real file backs the dataset, e.g. --weighted=no for a timestamped
  // SNAP column under a plain name).
  RWDOM_ASSIGN_OR_RETURN(bool dataset_directed,
                         BoolFlagOr(invocation, "directed", false));
  if (dataset_directed) {
    return Status::InvalidArgument(
        "--directed applies to --graph only; pick a directed dataset "
        "variant instead (e.g. CAGrQc-wd)");
  }
  std::optional<SubstrateWeights> weights;
  if (invocation.flags.count("weighted") > 0) {
    RWDOM_ASSIGN_OR_RETURN(SubstrateWeights parsed,
                           ParseWeightedFlag(invocation));
    weights = parsed;
  }
  RWDOM_ASSIGN_OR_RETURN(
      SubstrateDataset dataset,
      LoadOrSynthesizeSubstrateDataset(
          invocation.flags.at("dataset"),
          FlagOr(invocation, "data_dir", "data"), weights));
  return LoadedSubstrate{std::move(dataset.substrate), {}};
}

Result<QueryContext*> AcquireContext(const CommandEnv& env,
                                     std::optional<QueryContext>* storage) {
  if (env.warm_context != nullptr) return env.warm_context;
  RWDOM_ASSIGN_OR_RETURN(LoadedSubstrate loaded,
                         ResolveSubstrate(env.invocation));
  storage->emplace(std::move(loaded));
  return &storage->value();
}

Result<SelectorParams> ResolveSelectorParams(
    const CliInvocation& invocation) {
  SelectorParams params;
  RWDOM_ASSIGN_OR_RETURN(int64_t length, IntFlagOr(invocation, "L", 6));
  RWDOM_ASSIGN_OR_RETURN(int64_t samples, IntFlagOr(invocation, "R", 100));
  RWDOM_ASSIGN_OR_RETURN(int64_t seed, IntFlagOr(invocation, "seed", 42));
  // Checked on the int64 BEFORE narrowing, so out-of-int32-range values
  // error instead of silently wrapping past the guards.
  RWDOM_ASSIGN_OR_RETURN(params.length, CheckedInt32Flag("L", length, 0));
  RWDOM_ASSIGN_OR_RETURN(params.num_samples,
                         CheckedInt32Flag("R", samples, 1));
  params.seed = static_cast<uint64_t>(seed);
  return params;
}

Result<std::string> ResolveAlgorithmName(const CliInvocation& invocation,
                                         SelectorParams* params) {
  const bool has_algorithm = invocation.flags.count("algorithm") > 0;
  const bool has_problem = invocation.flags.count("problem") > 0;
  const bool has_method = invocation.flags.count("method") > 0;
  if (has_algorithm && (has_problem || has_method)) {
    return Status::InvalidArgument(
        "--algorithm and --problem/--method are exclusive spellings");
  }
  if (!has_problem && !has_method) {
    return FlagOr(invocation, "algorithm", "ApproxF2");
  }
  const std::string problem = FlagOr(invocation, "problem", "F2");
  if (problem != "F1" && problem != "F2") {
    return Status::InvalidArgument("--problem wants F1 or F2, got: " +
                                   problem);
  }
  const std::string method = FlagOr(invocation, "method", "index-celf");
  if (method == "dp") return "DP" + problem;
  if (method == "sampling") return "Sampling" + problem;
  if (method == "index" || method == "index-celf") {
    params->lazy = method == "index-celf";
    return "Approx" + problem;
  }
  return Status::InvalidArgument(
      "--method wants dp, sampling, index or index-celf, got: " + method);
}

Result<std::vector<NodeId>> ParseSeedList(const std::string& text,
                                          NodeId num_nodes) {
  std::vector<NodeId> seeds;
  for (std::string_view field : SplitString(text, ',')) {
    RWDOM_ASSIGN_OR_RETURN(int64_t value, ParseInt64(field));
    if (value < 0 || value >= num_nodes) {
      return Status::OutOfRange(
          StrFormat("seed %lld outside [0, %d)",
                    static_cast<long long>(value), num_nodes));
    }
    seeds.push_back(static_cast<NodeId>(value));
  }
  return seeds;
}

}  // namespace rwdom
