// The command abstraction behind the data-driven registry: a CommandDef
// bundles everything `rwdom` knows about one command — name, summary,
// flag spec (which also drives validation and `rwdom help COMMAND`), and
// the handler. Handlers are thin adapters: parse flags into a service
// request, execute it against a QueryContext, render the response.
#ifndef RWDOM_CLI_COMMAND_H_
#define RWDOM_CLI_COMMAND_H_

#include <ostream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "service/query_context.h"
#include "service/render.h"
#include "util/status.h"

namespace rwdom {

/// One flag a command understands: drives validation, "did you mean"
/// suggestions and generated help.
struct FlagDef {
  std::string name;        ///< Without the leading "--".
  std::string value_hint;  ///< e.g. "FILE", "N", "auto|yes|no".
  std::string help;        ///< One line for `rwdom help COMMAND`.
};

/// Everything a handler needs to run one command.
struct CommandEnv {
  const CliInvocation& invocation;
  std::ostream& out;
  OutputFormat format = OutputFormat::kText;
  /// Non-null when running inside `rwdom batch`: the shared warm engine.
  /// Handlers must use it instead of resolving their own substrate.
  QueryContext* warm_context = nullptr;
};

/// One registered command (see cli/command_registry.h for the table).
struct CommandDef {
  std::string name;
  std::string summary;  ///< One-liner for the global help.
  std::string usage;    ///< e.g. "rwdom select (--graph=FILE | ...) ...".
  std::vector<FlagDef> flags;
  /// Positional arguments accepted ("help COMMAND", "batch SCRIPT").
  int max_positionals = 0;
  std::string positional_hint;  ///< e.g. "[COMMAND]"; shown in usage.
  /// True for query commands that may appear in a batch script (they run
  /// against the script's shared substrate).
  bool batchable = false;
  Status (*handler)(const CommandEnv& env) = nullptr;
  /// Optional command-specific diagnostic for an unknown flag, appended
  /// to the validation error before the generic "did you mean" hint is
  /// considered (e.g. generate's --p/ER explanation). Returns "" for no
  /// hint.
  std::string (*unknown_flag_hint)(const CliInvocation& invocation,
                                   const std::string& flag) = nullptr;
};

}  // namespace rwdom

#endif  // RWDOM_CLI_COMMAND_H_
