// Flag access and resolution helpers shared by every command handler and
// by `rwdom batch` script lines (which reuse the exact same parsing path
// as one-shot invocations, so batch output is bit-identical to cold
// runs).
#ifndef RWDOM_CLI_FLAG_PARSING_H_
#define RWDOM_CLI_FLAG_PARSING_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "cli/command.h"
#include "core/selector_registry.h"
#include "service/query_context.h"
#include "util/status.h"
#include "wgraph/substrate.h"

namespace rwdom {

/// `flags[key]`, or `fallback` when absent.
std::string FlagOr(const CliInvocation& invocation, const std::string& key,
                   const std::string& fallback);

/// Every occurrence of --key in source order, for repeatable flags.
/// Falls back to the single map entry when the invocation was built
/// without ordered_flags (hand-constructed in tests).
std::vector<std::string> RepeatedFlagValues(const CliInvocation& invocation,
                                            const std::string& key);

/// Typed variants; parse errors are InvalidArgument.
Result<int64_t> IntFlagOr(const CliInvocation& invocation,
                          const std::string& key, int64_t fallback);
Result<double> DoubleFlagOr(const CliInvocation& invocation,
                            const std::string& key, double fallback);
Result<bool> BoolFlagOr(const CliInvocation& invocation,
                        const std::string& key, bool fallback);

/// The shared substrate-selection flag spec (--graph, --dataset,
/// --data_dir, --directed, --weighted), prepended to `extra` for each
/// graph-consuming command.
std::vector<FlagDef> WithSubstrateFlags(std::vector<FlagDef> extra);

/// True if `name` selects/shapes the input substrate — these are banned
/// inside batch script lines (the script's substrate is fixed up front).
bool IsSubstrateFlag(const std::string& name);

/// Validates a parsed int64 flag value against [min_value, 2^31) BEFORE
/// narrowing to the int32 the engine uses, so out-of-range input errors
/// instead of wrapping.
Result<int32_t> CheckedInt32Flag(const std::string& name, int64_t value,
                                 int64_t min_value);

/// Resolves --graph=FILE or --dataset=NAME (plus --directed /
/// --weighted) into a loaded substrate. See the old cli.cc contract:
/// exactly one source flag; dataset variants carry directedness in the
/// name.
Result<LoadedSubstrate> ResolveSubstrate(const CliInvocation& invocation);

/// The warm context when running inside a batch, else a fresh context
/// resolved from the invocation's substrate flags into `storage`.
Result<QueryContext*> AcquireContext(const CommandEnv& env,
                                     std::optional<QueryContext>* storage);

/// --L / --R / --seed with the select-side defaults (6 / 100 / 42).
Result<SelectorParams> ResolveSelectorParams(
    const CliInvocation& invocation);

/// --algorithm=NAME, or --problem=F1|F2 / --method=dp|sampling|index|
/// index-celf (exclusive spellings); sets params->lazy for the index
/// methods.
Result<std::string> ResolveAlgorithmName(const CliInvocation& invocation,
                                         SelectorParams* params);

/// Comma-separated node list, range-checked against `num_nodes`.
Result<std::vector<NodeId>> ParseSeedList(const std::string& text,
                                          NodeId num_nodes);

}  // namespace rwdom

#endif  // RWDOM_CLI_FLAG_PARSING_H_
