// `rwdom select`: pick k seeds with any registered selector.
#include <optional>
#include <utility>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "persist/snapshot.h"
#include "service/engine.h"

namespace rwdom {
namespace {

Status RunSelect(const CommandEnv& env) {
  std::optional<QueryContext> local;
  RWDOM_ASSIGN_OR_RETURN(QueryContext * context,
                         AcquireContext(env, &local));
  SelectRequest request;
  RWDOM_ASSIGN_OR_RETURN(request.params,
                         ResolveSelectorParams(env.invocation));
  RWDOM_ASSIGN_OR_RETURN(int64_t k, IntFlagOr(env.invocation, "k", 10));
  RWDOM_ASSIGN_OR_RETURN(request.k, CheckedInt32Flag("k", k, 0));
  RWDOM_ASSIGN_OR_RETURN(
      request.algorithm,
      ResolveAlgorithmName(env.invocation, &request.params));
  const std::string save_index = FlagOr(env.invocation, "save_index", "");

  RWDOM_ASSIGN_OR_RETURN(SelectResponse response,
                         Select(*context, request));

  if (!save_index.empty()) {
    // Sugar over the snapshot writer: the Approx* selection above built
    // (or warmed) the index under its ArtifactKey, so this GetIndex is a
    // pure cache hit and the file we write is the exact snapshot a
    // --cache_dir checkpoint would publish for the same key.
    if (request.algorithm.rfind("Approx", 0) != 0) {
      return Status::InvalidArgument(
          "--save_index only applies to ApproxF1/ApproxF2 "
          "(--method=index|index-celf)");
    }
    const ArtifactKey key =
        context->MakeKey(request.params.length, request.params.num_samples,
                         request.params.seed);
    RWDOM_ASSIGN_OR_RETURN(std::shared_ptr<const InvertedWalkIndex> index,
                           context->GetIndex(key));
    RWDOM_RETURN_IF_ERROR(WalkIndexSerializer::Save(*index, key, save_index));
    response.index_saved = save_index;
  }

  Render(ServiceResponse(std::move(response)), env.format, env.out);
  return Status::OK();
}

}  // namespace

CommandDef MakeSelectCommand() {
  CommandDef def;
  def.name = "select";
  def.summary = "pick k seeds for F1/F2 random-walk domination";
  def.usage =
      "rwdom select (--graph=FILE | --dataset=NAME) [--algorithm=NAME | "
      "--problem=F1|F2 --method=dp|sampling|index|index-celf] --k=K "
      "[--L=6 --R=100 --seed=42] [--save_index=FILE]";
  def.flags = WithSubstrateFlags({
      {"algorithm", "NAME", "registry name (Degree, Dominate, Random, "
                            "DPF1/2, SamplingF1/2, ApproxF1/2, EdgeGreedy)"},
      {"problem", "F1|F2", "paper problem (with --method; default F2)"},
      {"method", "dp|sampling|index|index-celf",
       "solver for --problem (default index-celf)"},
      {"k", "K", "seeds to select (default 10)"},
      {"L", "N", "walk budget (default 6)"},
      {"R", "N", "replicates / samples (default 100)"},
      {"seed", "N", "master walk seed (default 42)"},
      {"save_index", "FILE",
       "snapshot the inverted index to one file (Approx* only) — same "
       "format `serve --cache_dir` checkpoints and recovers; point it "
       "into a cache dir at <key>.rwidx to pre-warm a server"},
  });
  def.batchable = true;
  def.handler = RunSelect;
  return def;
}

}  // namespace rwdom
