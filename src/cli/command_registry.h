// The data-driven command registry: the single source of truth for which
// commands exist, which flags each understands, and how they are
// documented. Replaces the old if-chain dispatch and the parallel
// flag-spec table in cli.cc — adding a command is one cmd_*.cc file plus
// one line in the registration table.
#ifndef RWDOM_CLI_COMMAND_REGISTRY_H_
#define RWDOM_CLI_COMMAND_REGISTRY_H_

#include <string>
#include <vector>

#include "cli/command.h"
#include "util/status.h"

namespace rwdom {

/// All registered commands, in display order.
const std::vector<CommandDef>& Commands();

/// Lookup by name; nullptr for unknown commands.
const CommandDef* FindCommand(const std::string& name);

/// Flags accepted by every command (--threads, --format).
const std::vector<FlagDef>& GlobalFlagDefs();

/// Rejects unknown flags (with an edit-distance "did you mean"
/// suggestion) and surplus positional arguments.
Status ValidateInvocation(const CommandDef& command,
                          const CliInvocation& invocation);

/// `rwdom help COMMAND`: the command's usage, summary and flag spec,
/// generated from the registry.
std::string CommandHelp(const CommandDef& command);

/// "did you mean `select`?" suffix for an unknown command name, or ""
/// when nothing is close.
std::string SuggestCommand(const std::string& name);

// Handler factories, one per cli/cmd_*.cc file; the registry table in
// command_registry.cc assembles them.
CommandDef MakeDatasetsCommand();
CommandDef MakeStatsCommand();
CommandDef MakeGenerateCommand();
CommandDef MakeSelectCommand();
CommandDef MakeEvaluateCommand();
CommandDef MakeCoverCommand();
CommandDef MakeKnnCommand();
CommandDef MakeBatchCommand();
CommandDef MakeServeCommand();
CommandDef MakeRouteCommand();
CommandDef MakeClientCommand();
CommandDef MakeCacheCommand();
CommandDef MakeHelpCommand();

}  // namespace rwdom

#endif  // RWDOM_CLI_COMMAND_REGISTRY_H_
