// `rwdom stats`: structural statistics and memory footprint.
#include <optional>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "service/engine.h"

namespace rwdom {
namespace {

Status RunStats(const CommandEnv& env) {
  std::optional<QueryContext> local;
  RWDOM_ASSIGN_OR_RETURN(QueryContext * context,
                         AcquireContext(env, &local));
  StatsRequest request;
  RWDOM_ASSIGN_OR_RETURN(request.with_index,
                         BoolFlagOr(env.invocation, "with_index", false));
  if (request.with_index) {
    RWDOM_ASSIGN_OR_RETURN(request.params,
                           ResolveSelectorParams(env.invocation));
  }
  RWDOM_ASSIGN_OR_RETURN(StatsResponse response, Stats(*context, request));
  Render(ServiceResponse(std::move(response)), env.format, env.out);
  return Status::OK();
}

}  // namespace

CommandDef MakeStatsCommand() {
  CommandDef def;
  def.name = "stats";
  def.summary = "graph statistics and memory footprint";
  def.usage =
      "rwdom stats (--graph=FILE | --dataset=NAME) [--with_index=1 "
      "[--L=6 --R=100 --seed=42]]";
  def.flags = WithSubstrateFlags({
      {"with_index", "0|1", "also build + account the inverted walk index"},
      {"L", "N", "walk budget of the accounted index (default 6)"},
      {"R", "N", "replicates of the accounted index (default 100)"},
      {"seed", "N", "walk seed of the accounted index (default 42)"},
  });
  def.batchable = true;
  def.handler = RunStats;
  return def;
}

}  // namespace rwdom
