#include "cli/command_registry.h"

#include <algorithm>

#include "util/strings.h"

namespace rwdom {

const std::vector<CommandDef>& Commands() {
  static const std::vector<CommandDef>* const kCommands =
      new std::vector<CommandDef>{
          MakeDatasetsCommand(), MakeStatsCommand(),
          MakeGenerateCommand(), MakeSelectCommand(),
          MakeEvaluateCommand(), MakeCoverCommand(),
          MakeKnnCommand(),      MakeBatchCommand(),
          MakeServeCommand(),    MakeRouteCommand(),
          MakeClientCommand(),   MakeCacheCommand(),
          MakeHelpCommand(),
      };
  return *kCommands;
}

const CommandDef* FindCommand(const std::string& name) {
  for (const CommandDef& command : Commands()) {
    if (command.name == name) return &command;
  }
  return nullptr;
}

const std::vector<FlagDef>& GlobalFlagDefs() {
  static const std::vector<FlagDef>* const kFlags = new std::vector<FlagDef>{
      {"threads", "N", "worker threads (default: RWDOM_THREADS env or all "
                       "cores); results are identical for every count"},
      {"format", "text|json", "output rendering (default: text)"},
  };
  return *kFlags;
}

std::string SuggestCommand(const std::string& name) {
  std::vector<std::string> names;
  names.reserve(Commands().size());
  for (const CommandDef& command : Commands()) names.push_back(command.name);
  std::string closest = ClosestMatch(name, names);
  if (closest.empty()) return "";
  return " (did you mean `" + closest + "`?)";
}

Status ValidateInvocation(const CommandDef& command,
                          const CliInvocation& invocation) {
  if (static_cast<int>(invocation.positionals.size()) >
      command.max_positionals) {
    const std::string& surplus =
        invocation.positionals[static_cast<size_t>(command.max_positionals)];
    return Status::InvalidArgument(StrFormat(
        "unexpected argument `%s` for `%s` (expected --flag=value)",
        surplus.c_str(), command.name.c_str()));
  }
  for (const auto& [flag, value] : invocation.flags) {
    const auto known = [&flag](const FlagDef& def) {
      return def.name == flag;
    };
    if (std::any_of(command.flags.begin(), command.flags.end(), known) ||
        std::any_of(GlobalFlagDefs().begin(), GlobalFlagDefs().end(),
                    known)) {
      continue;
    }
    // A silently ignored flag is worse than an error, so unknown flags
    // are rejected — with the command's own diagnostic when it has one
    // (e.g. generate's --p/ER explanation), else the closest known flag.
    std::string hint;
    if (command.unknown_flag_hint != nullptr) {
      hint = command.unknown_flag_hint(invocation, flag);
    }
    if (hint.empty()) {
      std::vector<std::string> candidates;
      for (const FlagDef& def : command.flags) candidates.push_back(def.name);
      for (const FlagDef& def : GlobalFlagDefs()) {
        candidates.push_back(def.name);
      }
      std::string closest = ClosestMatch(flag, candidates);
      if (!closest.empty()) hint = "; did you mean --" + closest + "?";
    }
    std::string known_flags;
    for (const FlagDef& def : command.flags) {
      known_flags += " --" + def.name;
    }
    for (const FlagDef& def : GlobalFlagDefs()) {
      known_flags += " --" + def.name;
    }
    return Status::InvalidArgument(
        StrFormat("unknown flag --%s for `%s`%s (known flags:%s)",
                  flag.c_str(), command.name.c_str(), hint.c_str(),
                  known_flags.c_str()));
  }
  return Status::OK();
}

std::string CommandHelp(const CommandDef& command) {
  std::string text = "rwdom " + command.name;
  if (!command.positional_hint.empty()) {
    text += " " + command.positional_hint;
  }
  text += " — " + command.summary + "\n";
  if (!command.usage.empty()) {
    text += "\nusage: " + command.usage + "\n";
  }
  if (!command.flags.empty()) {
    text += "\nflags:\n";
    size_t width = 0;
    std::vector<std::string> labels;
    labels.reserve(command.flags.size());
    for (const FlagDef& def : command.flags) {
      std::string label = "--" + def.name;
      if (!def.value_hint.empty()) label += "=" + def.value_hint;
      width = std::max(width, label.size());
      labels.push_back(std::move(label));
    }
    for (size_t i = 0; i < command.flags.size(); ++i) {
      text += StrFormat("  %-*s  %s\n", static_cast<int>(width),
                        labels[i].c_str(), command.flags[i].help.c_str());
    }
  }
  text += "\nglobal flags:\n";
  for (const FlagDef& def : GlobalFlagDefs()) {
    text += StrFormat("  --%s=%s  %s\n", def.name.c_str(),
                      def.value_hint.c_str(), def.help.c_str());
  }
  return text;
}

}  // namespace rwdom
