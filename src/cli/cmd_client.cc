// `rwdom client`: connect to a running `rwdom serve`, send JSONL query
// lines (from a script file or stdin), print each response line. The
// thin end of the serving smoke tests: responses are whatever the
// server answered, one line per request.
#include <fstream>
#include <iostream>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "server/client.h"
#include "util/strings.h"

namespace rwdom {
namespace {

Status RunClient(const CommandEnv& env) {
  RWDOM_ASSIGN_OR_RETURN(int64_t port, IntFlagOr(env.invocation, "port", 0));
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument(
        "--port=N (1..65535) of a running `rwdom serve` is required");
  }
  const std::string host = FlagOr(env.invocation, "host", "127.0.0.1");
  RWDOM_ASSIGN_OR_RETURN(int64_t retries,
                         IntFlagOr(env.invocation, "retries", 0));
  if (retries < 0 || retries > 100) {
    return Status::InvalidArgument("--retries must be in [0, 100]");
  }
  RWDOM_ASSIGN_OR_RETURN(int64_t retry_base_ms,
                         IntFlagOr(env.invocation, "retry_base_ms", 100));
  if (retry_base_ms < 0) {
    return Status::InvalidArgument("--retry_base_ms must be >= 0");
  }
  RWDOM_ASSIGN_OR_RETURN(int64_t retry_seed,
                         IntFlagOr(env.invocation, "retry_seed", 0));

  int64_t queries = 0;
  Status streamed;
  if (retries > 0) {
    RetryPolicy policy;
    policy.max_retries = static_cast<int>(retries);
    policy.base_ms = static_cast<int>(retry_base_ms);
    policy.jitter_seed = static_cast<uint64_t>(retry_seed);
    RetryingClient client(host, static_cast<int>(port), policy);
    if (env.invocation.positionals.empty()) {
      streamed = StreamQueryScriptWithRetry(client, std::cin, env.out,
                                            &queries);
    } else {
      const std::string& script_path = env.invocation.positionals.front();
      std::ifstream file(script_path);
      if (!file) {
        return Status::IoError("cannot read query script: " + script_path);
      }
      streamed = StreamQueryScriptWithRetry(client, file, env.out, &queries);
    }
  } else {
    RWDOM_ASSIGN_OR_RETURN(
        QueryClient client,
        QueryClient::Connect(host, static_cast<int>(port)));
    if (env.invocation.positionals.empty()) {
      streamed = StreamQueryScript(client, std::cin, env.out, &queries);
    } else {
      const std::string& script_path = env.invocation.positionals.front();
      std::ifstream file(script_path);
      if (!file) {
        return Status::IoError("cannot read query script: " + script_path);
      }
      streamed = StreamQueryScript(client, file, env.out, &queries);
    }
  }
  RWDOM_RETURN_IF_ERROR(streamed);
  if (queries == 0) {
    return Status::InvalidArgument(
        "no query lines sent (script was empty/comments only)");
  }
  return Status::OK();
}

}  // namespace

CommandDef MakeClientCommand() {
  CommandDef def;
  def.name = "client";
  def.summary = "send JSONL queries to a running `rwdom serve`";
  def.usage =
      "rwdom client [SCRIPT.jsonl] --port=P [--host=127.0.0.1]\n       "
      "reads stdin when no script is given; prints one response line "
      "per request";
  def.flags = {
      {"port", "P", "port of the running server (required)"},
      {"host", "ADDR", "server address (default 127.0.0.1)"},
      {"retries", "N",
       "retry connect failures and Unavailable refusals up to N times "
       "with exponential backoff (default 0 = fail fast)"},
      {"retry_base_ms", "N",
       "first retry backoff; doubles per attempt, jittered (default 100)"},
      {"retry_seed", "S",
       "seed for the deterministic backoff jitter (default 0)"},
  };
  def.max_positionals = 1;
  def.positional_hint = "[SCRIPT.jsonl]";
  def.handler = RunClient;
  return def;
}

}  // namespace rwdom
