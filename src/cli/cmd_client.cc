// `rwdom client`: connect to a running `rwdom serve`, send JSONL query
// lines (from a script file or stdin), print each response line. The
// thin end of the serving smoke tests: responses are whatever the
// server answered, one line per request.
#include <fstream>
#include <iostream>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "server/client.h"
#include "util/strings.h"

namespace rwdom {
namespace {

Status RunClient(const CommandEnv& env) {
  RWDOM_ASSIGN_OR_RETURN(int64_t port, IntFlagOr(env.invocation, "port", 0));
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument(
        "--port=N (1..65535) of a running `rwdom serve` is required");
  }
  const std::string host = FlagOr(env.invocation, "host", "127.0.0.1");
  RWDOM_ASSIGN_OR_RETURN(
      QueryClient client,
      QueryClient::Connect(host, static_cast<int>(port)));

  int64_t queries = 0;
  if (env.invocation.positionals.empty()) {
    RWDOM_RETURN_IF_ERROR(
        StreamQueryScript(client, std::cin, env.out, &queries));
  } else {
    const std::string& script_path = env.invocation.positionals.front();
    std::ifstream file(script_path);
    if (!file) {
      return Status::IoError("cannot read query script: " + script_path);
    }
    RWDOM_RETURN_IF_ERROR(
        StreamQueryScript(client, file, env.out, &queries));
  }
  if (queries == 0) {
    return Status::InvalidArgument(
        "no query lines sent (script was empty/comments only)");
  }
  return Status::OK();
}

}  // namespace

CommandDef MakeClientCommand() {
  CommandDef def;
  def.name = "client";
  def.summary = "send JSONL queries to a running `rwdom serve`";
  def.usage =
      "rwdom client [SCRIPT.jsonl] --port=P [--host=127.0.0.1]\n       "
      "reads stdin when no script is given; prints one response line "
      "per request";
  def.flags = {
      {"port", "P", "port of the running server (required)"},
      {"host", "ADDR", "server address (default 127.0.0.1)"},
  };
  def.max_positionals = 1;
  def.positional_hint = "[SCRIPT.jsonl]";
  def.handler = RunClient;
  return def;
}

}  // namespace rwdom
