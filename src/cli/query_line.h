// The JSONL query-line protocol, shared by `rwdom batch` scripts and the
// TCP server (`rwdom serve`): one JSON object per line,
//
//   {"command": "select", "flags": {"problem": "F2", "k": 5, "L": 4}}
//
// parsed into the exact CliInvocation a one-shot command would see and
// executed through the same registry handler, so per-line output is
// bit-identical to running the command cold with the same flags. Lines
// may only carry query commands (CommandDef::batchable) and may not
// carry substrate or global flags — the substrate is fixed by whoever
// owns the warm QueryContext (the batch invocation or the server).
#ifndef RWDOM_CLI_QUERY_LINE_H_
#define RWDOM_CLI_QUERY_LINE_H_

#include <ostream>
#include <string>

#include "cli/command.h"
#include "service/query_context.h"
#include "util/status.h"

namespace rwdom {

/// Parses one JSONL line into an invocation (flag values may be JSON
/// strings, numbers or bools; members other than "command"/"flags" are
/// rejected).
Result<CliInvocation> ParseQueryLine(const std::string& line);

/// Looks up the invocation's command and applies every per-line rule:
/// known command, batchable, no substrate flags, no global flags, and
/// the command's own flag validation (with "did you mean" hints).
Result<const CommandDef*> ResolveQueryLine(const CliInvocation& invocation);

/// Parse + resolve + execute one line against the warm context,
/// rendering the response to `out` in `format`. With OutputFormat::kJson
/// every successful line produces exactly one JSON line.
Status ExecuteQueryLine(const std::string& line, QueryContext& context,
                        OutputFormat format, std::ostream& out);

}  // namespace rwdom

#endif  // RWDOM_CLI_QUERY_LINE_H_
