// The JSONL query-line protocol, shared by `rwdom batch` scripts and the
// TCP server (`rwdom serve`): one JSON object per line,
//
//   {"command": "select", "flags": {"problem": "F2", "k": 5, "L": 4}}
//
// parsed once by the service layer's versioned envelope
// (service/wire.h — also the server's and router's parser, so framing
// can never drift), turned into the exact CliInvocation a one-shot
// command would see and executed through the same registry handler, so
// per-line output is bit-identical to running the command cold with
// the same flags. Lines may only carry query commands
// (CommandDef::batchable) and may not carry substrate or global flags —
// the substrate is fixed by whoever owns the warm QueryContext (the
// batch invocation or the server's graph registry).
#ifndef RWDOM_CLI_QUERY_LINE_H_
#define RWDOM_CLI_QUERY_LINE_H_

#include <ostream>
#include <string>

#include "cli/command.h"
#include "service/query_context.h"
#include "service/wire.h"
#include "util/status.h"

namespace rwdom {

/// Parses one JSONL line into an invocation via ParseRequestLine.
/// Batch scripts fix their substrate up front, so a "graph" member is
/// rejected here (servers route on it instead — see
/// ExecuteRequestToJsonLine).
Result<CliInvocation> ParseQueryLine(const std::string& line);

/// The envelope -> invocation adapter: flags land in both the
/// last-wins map and ordered_flags, exactly as ParseCliArgs fills them.
CliInvocation RequestToInvocation(const ParsedRequest& request);

/// Looks up the invocation's command and applies every per-line rule:
/// known command, batchable, no substrate flags, no global flags, and
/// the command's own flag validation (with "did you mean" hints).
Result<const CommandDef*> ResolveQueryLine(const CliInvocation& invocation);

/// Resolve + execute one validated envelope against the warm context,
/// rendering the response to `out` in `format`. The request's graph
/// member is ignored — the caller already routed to `context`.
Status ExecuteParsedRequest(const ParsedRequest& request,
                            QueryContext& context, OutputFormat format,
                            std::ostream& out);

/// Parse + resolve + execute one line against the warm context,
/// rendering the response to `out` in `format`. With OutputFormat::kJson
/// every successful line produces exactly one JSON line.
Status ExecuteQueryLine(const std::string& line, QueryContext& context,
                        OutputFormat format, std::ostream& out);

/// QueryServer::LineExecutor-compatible entry point: executes the
/// envelope in JSON format and fills `response` with exactly one JSON
/// line (no trailing newline). This is the executor `rwdom serve`
/// injects, which is what makes served responses byte-identical to
/// cold `--format=json` runs.
Status ExecuteRequestToJsonLine(const ParsedRequest& request,
                                QueryContext& context,
                                std::string* response);

}  // namespace rwdom

#endif  // RWDOM_CLI_QUERY_LINE_H_
