#include "cli/cli.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <set>

#include "core/approx_greedy.h"
#include "core/min_seed_cover.h"
#include "core/selector_registry.h"
#include "eval/metrics.h"
#include "graph/clustering.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/properties.h"
#include "harness/dataset_registry.h"
#include "harness/table_printer.h"
#include "index/index_io.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "walk/hitting_time_knn.h"

namespace rwdom {
namespace {

// --- Per-command flag validation -----------------------------------------

struct CommandSpec {
  const char* name;
  // Flags the command understands, beyond the global ones.
  std::set<std::string> flags;
};

// Flags accepted by every command.
const std::set<std::string>& GlobalFlags() {
  static const std::set<std::string>* const kFlags =
      new std::set<std::string>{"threads"};
  return *kFlags;
}

const std::vector<CommandSpec>& CommandSpecs() {
  static const std::vector<CommandSpec>* const kSpecs =
      new std::vector<CommandSpec>{
          {"datasets", {}},
          {"stats", {"graph", "dataset", "data_dir"}},
          {"generate",
           {"model", "out", "n", "m", "seed", "attach", "communities",
            "mixing", "k", "beta", "gamma", "avg_degree"}},
          {"select",
           {"graph", "dataset", "data_dir", "algorithm", "k", "L", "R",
            "seed", "save_index"}},
          {"evaluate",
           {"graph", "dataset", "data_dir", "seeds", "L", "R", "seed"}},
          {"cover",
           {"graph", "dataset", "data_dir", "alpha", "L", "R", "seed"}},
          {"knn",
           {"graph", "dataset", "data_dir", "query", "k", "L", "R", "seed",
            "mode"}},
          {"help", {}},
      };
  return *kSpecs;
}

// Rejects flags the command does not understand, with a hint: a silently
// ignored flag (e.g. `generate --model=er --p=0.1`, where ER is G(n,m) and
// wants --m) is worse than an error.
Status ValidateFlags(const CliInvocation& invocation) {
  const CommandSpec* spec = nullptr;
  for (const CommandSpec& candidate : CommandSpecs()) {
    if (invocation.command == candidate.name) {
      spec = &candidate;
      break;
    }
  }
  if (spec == nullptr) return Status::OK();  // Unknown command errors later.
  for (const auto& [flag, value] : invocation.flags) {
    if (spec->flags.count(flag) > 0 || GlobalFlags().count(flag) > 0) {
      continue;
    }
    std::string hint;
    const auto model = invocation.flags.find("model");
    if (invocation.command == "generate" && flag == "p" &&
        model != invocation.flags.end() && model->second == "er") {
      hint = "; the er model is G(n,m) — pass --m=EDGES, not --p";
    }
    std::string known = "--threads";
    for (const std::string& name : spec->flags) known += " --" + name;
    return Status::InvalidArgument(
        StrFormat("unknown flag --%s for `%s`%s (known flags: %s)",
                  flag.c_str(), invocation.command.c_str(), hint.c_str(),
                  known.c_str()));
  }
  return Status::OK();
}

// --- Flag access helpers -------------------------------------------------

std::string FlagOr(const CliInvocation& invocation, const std::string& key,
                   const std::string& fallback) {
  auto it = invocation.flags.find(key);
  return it == invocation.flags.end() ? fallback : it->second;
}

Result<int64_t> IntFlagOr(const CliInvocation& invocation,
                          const std::string& key, int64_t fallback) {
  auto it = invocation.flags.find(key);
  if (it == invocation.flags.end()) return fallback;
  RWDOM_ASSIGN_OR_RETURN(int64_t value, ParseInt64(it->second));
  return value;
}

Result<double> DoubleFlagOr(const CliInvocation& invocation,
                            const std::string& key, double fallback) {
  auto it = invocation.flags.find(key);
  if (it == invocation.flags.end()) return fallback;
  RWDOM_ASSIGN_OR_RETURN(double value, ParseDouble(it->second));
  return value;
}

// Resolves --graph=FILE or --dataset=NAME into a Graph.
Result<Graph> ResolveGraph(const CliInvocation& invocation) {
  const bool has_graph = invocation.flags.count("graph") > 0;
  const bool has_dataset = invocation.flags.count("dataset") > 0;
  if (has_graph == has_dataset) {
    return Status::InvalidArgument(
        "exactly one of --graph=FILE or --dataset=NAME is required");
  }
  if (has_graph) {
    RWDOM_ASSIGN_OR_RETURN(LoadedGraph loaded,
                           LoadEdgeList(invocation.flags.at("graph")));
    return std::move(loaded.graph);
  }
  RWDOM_ASSIGN_OR_RETURN(
      Dataset dataset,
      LoadOrSynthesizeDataset(invocation.flags.at("dataset"),
                              FlagOr(invocation, "data_dir", "data")));
  return std::move(dataset.graph);
}

Result<SelectorParams> ResolveSelectorParams(
    const CliInvocation& invocation) {
  SelectorParams params;
  RWDOM_ASSIGN_OR_RETURN(int64_t length, IntFlagOr(invocation, "L", 6));
  RWDOM_ASSIGN_OR_RETURN(int64_t samples, IntFlagOr(invocation, "R", 100));
  RWDOM_ASSIGN_OR_RETURN(int64_t seed, IntFlagOr(invocation, "seed", 42));
  if (length < 0) return Status::InvalidArgument("--L must be >= 0");
  if (samples < 1) return Status::InvalidArgument("--R must be >= 1");
  params.length = static_cast<int32_t>(length);
  params.num_samples = static_cast<int32_t>(samples);
  params.seed = static_cast<uint64_t>(seed);
  return params;
}

Result<std::vector<NodeId>> ParseSeedList(const std::string& text,
                                          NodeId num_nodes) {
  std::vector<NodeId> seeds;
  for (std::string_view field : SplitString(text, ',')) {
    RWDOM_ASSIGN_OR_RETURN(int64_t value, ParseInt64(field));
    if (value < 0 || value >= num_nodes) {
      return Status::OutOfRange(
          StrFormat("seed %lld outside [0, %d)",
                    static_cast<long long>(value), num_nodes));
    }
    seeds.push_back(static_cast<NodeId>(value));
  }
  return seeds;
}

// --- Commands ------------------------------------------------------------

Status RunDatasets(const CliInvocation&, std::ostream& out) {
  TablePrinter table({"name", "nodes", "edges"});
  for (const DatasetSpec& spec : PaperDatasets()) {
    table.AddRow({spec.name, FormatWithCommas(spec.nodes),
                  FormatWithCommas(spec.edges)});
  }
  out << table.ToString();
  return Status::OK();
}

Status RunStats(const CliInvocation& invocation, std::ostream& out) {
  RWDOM_ASSIGN_OR_RETURN(Graph graph, ResolveGraph(invocation));
  GraphStats stats = ComputeGraphStats(graph);
  out << stats.ToString() << "\n";
  out << StrFormat("triangles=%lld avg_clustering=%.4f transitivity=%.4f\n",
                   static_cast<long long>(CountTriangles(graph)),
                   AverageClusteringCoefficient(graph),
                   GlobalClusteringCoefficient(graph));
  return Status::OK();
}

Status RunGenerate(const CliInvocation& invocation, std::ostream& out) {
  const std::string model = FlagOr(invocation, "model", "");
  const std::string out_path = FlagOr(invocation, "out", "");
  if (out_path.empty()) {
    return Status::InvalidArgument("--out=FILE is required");
  }
  RWDOM_ASSIGN_OR_RETURN(int64_t n64, IntFlagOr(invocation, "n", 0));
  RWDOM_ASSIGN_OR_RETURN(int64_t m, IntFlagOr(invocation, "m", 0));
  RWDOM_ASSIGN_OR_RETURN(int64_t seed, IntFlagOr(invocation, "seed", 42));
  const NodeId n = static_cast<NodeId>(n64);

  Result<Graph> graph = Status::InvalidArgument(
      "unknown --model (want ba, plc, er, ws, or cl): " + model);
  if (model == "ba") {
    RWDOM_ASSIGN_OR_RETURN(int64_t attach,
                           IntFlagOr(invocation, "attach", 5));
    graph = GenerateBarabasiAlbert(n, static_cast<int32_t>(attach),
                                   static_cast<uint64_t>(seed));
  } else if (model == "plc") {
    RWDOM_ASSIGN_OR_RETURN(int64_t communities,
                           IntFlagOr(invocation, "communities", 16));
    RWDOM_ASSIGN_OR_RETURN(double mixing,
                           DoubleFlagOr(invocation, "mixing", 0.08));
    graph = GeneratePowerLawCommunity(n, m,
                                      static_cast<int32_t>(communities),
                                      mixing, static_cast<uint64_t>(seed));
  } else if (model == "er") {
    graph = GenerateErdosRenyiGnm(n, m, static_cast<uint64_t>(seed));
  } else if (model == "ws") {
    RWDOM_ASSIGN_OR_RETURN(int64_t k, IntFlagOr(invocation, "k", 4));
    RWDOM_ASSIGN_OR_RETURN(double beta,
                           DoubleFlagOr(invocation, "beta", 0.1));
    graph = GenerateWattsStrogatz(n, static_cast<int32_t>(k), beta,
                                  static_cast<uint64_t>(seed));
  } else if (model == "cl") {
    RWDOM_ASSIGN_OR_RETURN(double gamma,
                           DoubleFlagOr(invocation, "gamma", 2.5));
    RWDOM_ASSIGN_OR_RETURN(double avg_degree,
                           DoubleFlagOr(invocation, "avg_degree", 10.0));
    graph = GenerateChungLu(n, gamma, avg_degree,
                            static_cast<uint64_t>(seed));
  }
  if (!graph.ok()) return graph.status();
  RWDOM_RETURN_IF_ERROR(
      SaveEdgeList(*graph, out_path, "generated by rwdom (" + model + ")"));
  out << StrFormat("wrote %s: n=%d m=%lld\n", out_path.c_str(),
                   graph->num_nodes(),
                   static_cast<long long>(graph->num_edges()));
  return Status::OK();
}

Status RunSelect(const CliInvocation& invocation, std::ostream& out) {
  RWDOM_ASSIGN_OR_RETURN(Graph graph, ResolveGraph(invocation));
  RWDOM_ASSIGN_OR_RETURN(SelectorParams params,
                         ResolveSelectorParams(invocation));
  RWDOM_ASSIGN_OR_RETURN(int64_t k, IntFlagOr(invocation, "k", 10));
  if (k < 0) return Status::InvalidArgument("--k must be >= 0");
  const std::string algorithm = FlagOr(invocation, "algorithm", "ApproxF2");
  RWDOM_ASSIGN_OR_RETURN(std::unique_ptr<Selector> selector,
                         MakeSelector(algorithm, &graph, params));

  SelectionResult result = selector->Select(static_cast<int32_t>(k));
  out << StrFormat("%s selected %zu seeds in %.3f s\nseeds:",
                   algorithm.c_str(), result.selected.size(),
                   result.seconds);
  for (NodeId u : result.selected) out << " " << u;
  out << "\n";

  MetricsResult metrics =
      SampledMetrics(graph, result.selected, params.length,
                     /*num_samples=*/500, params.seed + 1);
  out << StrFormat("AHT=%.4f EHN=%.1f (L=%d, metric R=500)\n", metrics.aht,
                   metrics.ehn, params.length);

  // Optional: persist the inverted index for reuse across runs.
  const std::string save_index = FlagOr(invocation, "save_index", "");
  if (!save_index.empty()) {
    if (algorithm != "ApproxF1" && algorithm != "ApproxF2") {
      return Status::InvalidArgument(
          "--save_index only applies to ApproxF1/ApproxF2");
    }
    ApproxGreedyOptions options{.length = params.length,
                                .num_replicates = params.num_samples,
                                .seed = params.seed,
                                .lazy = params.lazy};
    ApproxGreedy approx(&graph,
                        algorithm == "ApproxF1" ? Problem::kHittingTime
                                                : Problem::kDominatedCount,
                        options);
    approx.Select(static_cast<int32_t>(k));
    RWDOM_RETURN_IF_ERROR(
        WalkIndexSerializer::Save(*approx.index(), save_index));
    out << "index saved to " << save_index << "\n";
  }
  return Status::OK();
}

Status RunEvaluate(const CliInvocation& invocation, std::ostream& out) {
  RWDOM_ASSIGN_OR_RETURN(Graph graph, ResolveGraph(invocation));
  RWDOM_ASSIGN_OR_RETURN(SelectorParams params,
                         ResolveSelectorParams(invocation));
  const std::string seeds_text = FlagOr(invocation, "seeds", "");
  if (seeds_text.empty()) {
    return Status::InvalidArgument("--seeds=a,b,c is required");
  }
  RWDOM_ASSIGN_OR_RETURN(std::vector<NodeId> seeds,
                         ParseSeedList(seeds_text, graph.num_nodes()));
  RWDOM_ASSIGN_OR_RETURN(int64_t metric_r, IntFlagOr(invocation, "R", 500));
  MetricsResult metrics =
      SampledMetrics(graph, seeds, params.length,
                     static_cast<int32_t>(metric_r), params.seed);
  out << StrFormat("k=%zu L=%d R=%lld\nAHT=%.4f\nEHN=%.1f\n", seeds.size(),
                   params.length, static_cast<long long>(metric_r),
                   metrics.aht, metrics.ehn);
  return Status::OK();
}

Status RunKnn(const CliInvocation& invocation, std::ostream& out) {
  RWDOM_ASSIGN_OR_RETURN(Graph graph, ResolveGraph(invocation));
  RWDOM_ASSIGN_OR_RETURN(SelectorParams params,
                         ResolveSelectorParams(invocation));
  RWDOM_ASSIGN_OR_RETURN(int64_t query, IntFlagOr(invocation, "query", -1));
  RWDOM_ASSIGN_OR_RETURN(int64_t k, IntFlagOr(invocation, "k", 10));
  if (query < 0 || query >= graph.num_nodes()) {
    return Status::OutOfRange("--query must name a node of the graph");
  }
  if (k < 0) return Status::InvalidArgument("--k must be >= 0");
  const std::string mode = FlagOr(invocation, "mode", "exact");
  std::vector<HittingTimeNeighbor> rows;
  if (mode == "exact") {
    rows = ExactHittingTimeKnn(graph, static_cast<NodeId>(query),
                               static_cast<int32_t>(k), params.length);
  } else if (mode == "sampled") {
    RandomWalkSource source(&graph, params.seed);
    rows = SampledHittingTimeKnn(&source, static_cast<NodeId>(query),
                                 static_cast<int32_t>(k), params.length,
                                 params.num_samples);
  } else {
    return Status::InvalidArgument("--mode must be exact or sampled");
  }
  TablePrinter table({"rank", "node", "h^L(node -> query)"});
  for (size_t i = 0; i < rows.size(); ++i) {
    table.AddRow({std::to_string(i + 1), std::to_string(rows[i].node),
                  StrFormat("%.4f", rows[i].hitting_time)});
  }
  out << table.ToString();
  return Status::OK();
}

Status RunCover(const CliInvocation& invocation, std::ostream& out) {
  RWDOM_ASSIGN_OR_RETURN(Graph graph, ResolveGraph(invocation));
  RWDOM_ASSIGN_OR_RETURN(SelectorParams params,
                         ResolveSelectorParams(invocation));
  RWDOM_ASSIGN_OR_RETURN(double alpha,
                         DoubleFlagOr(invocation, "alpha", 0.9));
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("--alpha must be in [0, 1]");
  }
  ApproxGreedyOptions options{.length = params.length,
                              .num_replicates = params.num_samples,
                              .seed = params.seed,
                              .lazy = true};
  MinSeedCoverResult cover = MinSeedCover(graph, alpha, options);
  out << StrFormat("alpha=%.2f -> %zu seeds (target %s) in %.3f s\nseeds:",
                   alpha, cover.selected.size(),
                   cover.reached_target ? "reached" : "NOT reached",
                   cover.seconds);
  for (NodeId u : cover.selected) out << " " << u;
  out << "\n";
  return Status::OK();
}

}  // namespace

std::string CliUsage() {
  return
      "rwdom — random-walk domination toolkit (Li et al., ICDE'14)\n"
      "\n"
      "usage: rwdom COMMAND [--flag=value ...]\n"
      "\n"
      "commands:\n"
      "  datasets   list the paper's Table-2 datasets\n"
      "  stats      graph statistics (--graph=FILE | --dataset=NAME)\n"
      "  generate   synthesize a graph (--model=ba|plc|er|ws|cl --n=N\n"
      "             [--m=M ...] --out=FILE)\n"
      "  select     pick k seeds (--algorithm=ApproxF2 --k=K [--L --R\n"
      "             --seed --save_index=FILE])\n"
      "  evaluate   score a seed set (--seeds=1,2,3 [--L --R])\n"
      "  cover      minimum seeds for alpha coverage (--alpha=0.9)\n"
      "  knn        truncated-hitting-time neighbors (--query=NODE --k=10\n"
      "             [--mode=exact|sampled])\n"
      "  help       this text\n"
      "\n"
      "graph input: --graph=EDGELIST or --dataset=NAME [--data_dir=DIR]\n"
      "algorithms: Degree Dominate Random DPF1 DPF2 SamplingF1 SamplingF2\n"
      "            ApproxF1 ApproxF2 EdgeGreedy\n"
      "threading:  --threads=N (or RWDOM_THREADS=N; default: all cores).\n"
      "            Results are identical for every thread count.\n"
      "Unknown flags are rejected; each command lists its own in `help`.\n";
}

Result<CliInvocation> ParseCliArgs(int argc, const char* const* argv) {
  if (argc < 2) {
    return Status::InvalidArgument("missing command (try `rwdom help`)");
  }
  CliInvocation invocation;
  invocation.command = argv[1];
  if (invocation.command == "--help" || invocation.command == "-h") {
    invocation.command = "help";
  }
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("expected --flag=value, got: " +
                                     std::string(arg));
    }
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("flag needs a value: --" +
                                     std::string(arg));
    }
    invocation.flags[std::string(arg.substr(0, eq))] =
        std::string(arg.substr(eq + 1));
  }
  return invocation;
}

Status RunCliCommand(const CliInvocation& invocation, std::ostream& out) {
  RWDOM_RETURN_IF_ERROR(ValidateFlags(invocation));
  if (invocation.flags.count("threads") > 0) {
    // Global --threads flag (equivalent to the RWDOM_THREADS env var).
    RWDOM_ASSIGN_OR_RETURN(int64_t threads,
                           IntFlagOr(invocation, "threads", 0));
    if (threads < 1 || threads > 1024) {
      return Status::InvalidArgument("--threads must be in [1, 1024]");
    }
    SetNumThreads(static_cast<int>(threads));
  }
  if (invocation.command == "datasets") return RunDatasets(invocation, out);
  if (invocation.command == "stats") return RunStats(invocation, out);
  if (invocation.command == "generate") return RunGenerate(invocation, out);
  if (invocation.command == "select") return RunSelect(invocation, out);
  if (invocation.command == "evaluate") return RunEvaluate(invocation, out);
  if (invocation.command == "cover") return RunCover(invocation, out);
  if (invocation.command == "knn") return RunKnn(invocation, out);
  if (invocation.command == "help") {
    out << CliUsage();
    return Status::OK();
  }
  return Status::NotFound("unknown command: " + invocation.command);
}

int CliMain(int argc, const char* const* argv) {
  Result<CliInvocation> invocation = ParseCliArgs(argc, argv);
  if (!invocation.ok()) {
    std::fprintf(stderr, "%s\n%s", invocation.status().ToString().c_str(),
                 CliUsage().c_str());
    return 2;
  }
  Status status = RunCliCommand(*invocation, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace rwdom
