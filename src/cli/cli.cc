#include "cli/cli.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <set>

#include "core/approx_greedy.h"
#include "core/min_seed_cover.h"
#include "core/selector_registry.h"
#include "eval/metrics.h"
#include "graph/clustering.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/properties.h"
#include "harness/dataset_registry.h"
#include "harness/table_printer.h"
#include "index/index_io.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "walk/hitting_time_knn.h"
#include "wgraph/substrate.h"
#include "wgraph/weighted_graph_io.h"

namespace rwdom {
namespace {

// --- Per-command flag validation -----------------------------------------

struct CommandSpec {
  const char* name;
  // Flags the command understands, beyond the global ones.
  std::set<std::string> flags;
};

// Flags accepted by every command.
const std::set<std::string>& GlobalFlags() {
  static const std::set<std::string>* const kFlags =
      new std::set<std::string>{"threads"};
  return *kFlags;
}

// Flags that pick and shape the input substrate, shared by every
// graph-consuming command.
const std::set<std::string>& SubstrateFlags() {
  static const std::set<std::string>* const kFlags =
      new std::set<std::string>{"graph", "dataset", "data_dir", "directed",
                                "weighted"};
  return *kFlags;
}

std::set<std::string> WithSubstrateFlags(std::set<std::string> extra) {
  extra.insert(SubstrateFlags().begin(), SubstrateFlags().end());
  return extra;
}

const std::vector<CommandSpec>& CommandSpecs() {
  static const std::vector<CommandSpec>* const kSpecs =
      new std::vector<CommandSpec>{
          {"datasets", {}},
          {"stats", WithSubstrateFlags({"with_index", "L", "R", "seed"})},
          {"generate",
           {"model", "out", "n", "m", "seed", "attach", "communities",
            "mixing", "k", "beta", "gamma", "avg_degree", "weighted",
            "directed"}},
          {"select",
           WithSubstrateFlags({"algorithm", "problem", "method", "k", "L",
                               "R", "seed", "save_index"})},
          {"evaluate", WithSubstrateFlags({"seeds", "L", "R", "seed"})},
          {"cover", WithSubstrateFlags({"alpha", "L", "R", "seed"})},
          {"knn",
           WithSubstrateFlags({"query", "k", "L", "R", "seed", "mode"})},
          {"help", {}},
      };
  return *kSpecs;
}

// Rejects flags the command does not understand, with a hint: a silently
// ignored flag (e.g. `generate --model=er --p=0.1`, where ER is G(n,m) and
// wants --m) is worse than an error.
Status ValidateFlags(const CliInvocation& invocation) {
  const CommandSpec* spec = nullptr;
  for (const CommandSpec& candidate : CommandSpecs()) {
    if (invocation.command == candidate.name) {
      spec = &candidate;
      break;
    }
  }
  if (spec == nullptr) return Status::OK();  // Unknown command errors later.
  for (const auto& [flag, value] : invocation.flags) {
    if (spec->flags.count(flag) > 0 || GlobalFlags().count(flag) > 0) {
      continue;
    }
    std::string hint;
    const auto model = invocation.flags.find("model");
    if (invocation.command == "generate" && flag == "p" &&
        model != invocation.flags.end() && model->second == "er") {
      hint = "; the er model is G(n,m) — pass --m=EDGES, not --p";
    }
    std::string known = "--threads";
    for (const std::string& name : spec->flags) known += " --" + name;
    return Status::InvalidArgument(
        StrFormat("unknown flag --%s for `%s`%s (known flags: %s)",
                  flag.c_str(), invocation.command.c_str(), hint.c_str(),
                  known.c_str()));
  }
  return Status::OK();
}

// --- Flag access helpers -------------------------------------------------

std::string FlagOr(const CliInvocation& invocation, const std::string& key,
                   const std::string& fallback) {
  auto it = invocation.flags.find(key);
  return it == invocation.flags.end() ? fallback : it->second;
}

Result<int64_t> IntFlagOr(const CliInvocation& invocation,
                          const std::string& key, int64_t fallback) {
  auto it = invocation.flags.find(key);
  if (it == invocation.flags.end()) return fallback;
  RWDOM_ASSIGN_OR_RETURN(int64_t value, ParseInt64(it->second));
  return value;
}

Result<double> DoubleFlagOr(const CliInvocation& invocation,
                            const std::string& key, double fallback) {
  auto it = invocation.flags.find(key);
  if (it == invocation.flags.end()) return fallback;
  RWDOM_ASSIGN_OR_RETURN(double value, ParseDouble(it->second));
  return value;
}

Result<bool> BoolFlagOr(const CliInvocation& invocation,
                        const std::string& key, bool fallback) {
  auto it = invocation.flags.find(key);
  if (it == invocation.flags.end()) return fallback;
  const std::string& value = it->second;
  if (value == "1" || value == "true" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "no") return false;
  return Status::InvalidArgument("--" + key +
                                 " wants true/false, got: " + value);
}

// Parses --weighted=auto|yes|no (several spellings accepted).
Result<SubstrateWeights> ParseWeightedFlag(const CliInvocation& invocation) {
  const std::string weighted = FlagOr(invocation, "weighted", "auto");
  if (weighted == "auto") return SubstrateWeights::kAuto;
  if (weighted == "yes" || weighted == "true" || weighted == "1") {
    return SubstrateWeights::kForce;
  }
  if (weighted == "no" || weighted == "false" || weighted == "0") {
    return SubstrateWeights::kIgnore;
  }
  return Status::InvalidArgument("--weighted wants auto/yes/no, got: " +
                                 weighted);
}

// Resolves --graph=FILE or --dataset=NAME (plus --directed / --weighted)
// into a substrate. Weighted/directed edge lists are autodetected for
// --graph; dataset variants carry their directedness in the name
// (-w / -wd), with --weighted usable to override detection on real files.
Result<LoadedSubstrate> ResolveSubstrate(const CliInvocation& invocation) {
  const bool has_graph = invocation.flags.count("graph") > 0;
  const bool has_dataset = invocation.flags.count("dataset") > 0;
  if (has_graph == has_dataset) {
    return Status::InvalidArgument(
        "exactly one of --graph=FILE or --dataset=NAME is required");
  }
  if (has_graph) {
    SubstrateOptions options;
    RWDOM_ASSIGN_OR_RETURN(options.directed,
                           BoolFlagOr(invocation, "directed", false));
    RWDOM_ASSIGN_OR_RETURN(options.weights, ParseWeightedFlag(invocation));
    if (options.directed && options.weights == SubstrateWeights::kIgnore) {
      return Status::InvalidArgument(
          "--directed needs the weighted substrate; drop --weighted=no");
    }
    return LoadSubstrate(invocation.flags.at("graph"), options);
  }
  // Datasets carry directedness in the variant name, so --directed=1 is
  // rejected; --weighted passes through (it overrides autodetection when a
  // real file backs the dataset, e.g. --weighted=no for a timestamped
  // SNAP column under a plain name).
  RWDOM_ASSIGN_OR_RETURN(bool dataset_directed,
                         BoolFlagOr(invocation, "directed", false));
  if (dataset_directed) {
    return Status::InvalidArgument(
        "--directed applies to --graph only; pick a directed dataset "
        "variant instead (e.g. CAGrQc-wd)");
  }
  std::optional<SubstrateWeights> weights;
  if (invocation.flags.count("weighted") > 0) {
    RWDOM_ASSIGN_OR_RETURN(SubstrateWeights parsed,
                           ParseWeightedFlag(invocation));
    weights = parsed;
  }
  RWDOM_ASSIGN_OR_RETURN(
      SubstrateDataset dataset,
      LoadOrSynthesizeSubstrateDataset(
          invocation.flags.at("dataset"),
          FlagOr(invocation, "data_dir", "data"), weights));
  return LoadedSubstrate{std::move(dataset.substrate), {}};
}

Result<SelectorParams> ResolveSelectorParams(
    const CliInvocation& invocation) {
  SelectorParams params;
  RWDOM_ASSIGN_OR_RETURN(int64_t length, IntFlagOr(invocation, "L", 6));
  RWDOM_ASSIGN_OR_RETURN(int64_t samples, IntFlagOr(invocation, "R", 100));
  RWDOM_ASSIGN_OR_RETURN(int64_t seed, IntFlagOr(invocation, "seed", 42));
  if (length < 0) return Status::InvalidArgument("--L must be >= 0");
  if (samples < 1) return Status::InvalidArgument("--R must be >= 1");
  params.length = static_cast<int32_t>(length);
  params.num_samples = static_cast<int32_t>(samples);
  params.seed = static_cast<uint64_t>(seed);
  return params;
}

// Resolves the selector name from either --algorithm=NAME or the
// --problem=F1|F2 / --method=... pair (the two spellings are exclusive).
// Methods: dp, sampling, index (plain scan), index-celf (lazy CELF).
Result<std::string> ResolveAlgorithmName(const CliInvocation& invocation,
                                         SelectorParams* params) {
  const bool has_algorithm = invocation.flags.count("algorithm") > 0;
  const bool has_problem = invocation.flags.count("problem") > 0;
  const bool has_method = invocation.flags.count("method") > 0;
  if (has_algorithm && (has_problem || has_method)) {
    return Status::InvalidArgument(
        "--algorithm and --problem/--method are exclusive spellings");
  }
  if (!has_problem && !has_method) {
    return FlagOr(invocation, "algorithm", "ApproxF2");
  }
  const std::string problem = FlagOr(invocation, "problem", "F2");
  if (problem != "F1" && problem != "F2") {
    return Status::InvalidArgument("--problem wants F1 or F2, got: " +
                                   problem);
  }
  const std::string method = FlagOr(invocation, "method", "index-celf");
  if (method == "dp") return "DP" + problem;
  if (method == "sampling") return "Sampling" + problem;
  if (method == "index" || method == "index-celf") {
    params->lazy = method == "index-celf";
    return "Approx" + problem;
  }
  return Status::InvalidArgument(
      "--method wants dp, sampling, index or index-celf, got: " + method);
}

Result<std::vector<NodeId>> ParseSeedList(const std::string& text,
                                          NodeId num_nodes) {
  std::vector<NodeId> seeds;
  for (std::string_view field : SplitString(text, ',')) {
    RWDOM_ASSIGN_OR_RETURN(int64_t value, ParseInt64(field));
    if (value < 0 || value >= num_nodes) {
      return Status::OutOfRange(
          StrFormat("seed %lld outside [0, %d)",
                    static_cast<long long>(value), num_nodes));
    }
    seeds.push_back(static_cast<NodeId>(value));
  }
  return seeds;
}

// --- Commands ------------------------------------------------------------

Status RunDatasets(const CliInvocation&, std::ostream& out) {
  TablePrinter table({"name", "nodes", "edges"});
  for (const DatasetSpec& spec : PaperDatasets()) {
    table.AddRow({spec.name, FormatWithCommas(spec.nodes),
                  FormatWithCommas(spec.edges)});
  }
  out << table.ToString();
  out << "variants: append -w (weighted) or -wd (weighted directed) to any\n"
         "name for a deterministic weighted stand-in on the same topology.\n";
  return Status::OK();
}

// Appends the capacity-planning lines of `rwdom stats`: graph memory, and
// the inverted-index memory when the caller asked for one.
Status PrintMemoryFootprint(const CliInvocation& invocation,
                            const GraphSubstrate& substrate,
                            std::ostream& out) {
  const int64_t graph_bytes = substrate.MemoryUsageBytes();
  const double n = std::max<double>(1.0, substrate.num_nodes());
  const double links = std::max<double>(1.0, substrate.num_links());
  out << StrFormat(
      "memory: graph=%lld bytes (%.1f bytes/node, %.1f bytes/%s)\n",
      static_cast<long long>(graph_bytes),
      static_cast<double>(graph_bytes) / n,
      static_cast<double>(graph_bytes) / links,
      substrate.weighted() ? "arc" : "edge");

  RWDOM_ASSIGN_OR_RETURN(bool with_index,
                         BoolFlagOr(invocation, "with_index", false));
  if (!with_index) return Status::OK();
  RWDOM_ASSIGN_OR_RETURN(SelectorParams params,
                         ResolveSelectorParams(invocation));
  auto source = substrate.MakeWalkSource(params.seed);
  InvertedWalkIndex index = InvertedWalkIndex::Build(
      params.length, params.num_samples, source.get());
  const int64_t index_bytes = index.MemoryUsageBytes();
  out << StrFormat(
      "memory: index=%lld bytes (L=%d R=%d, %lld entries, "
      "%.1f bytes/node, %.2f bytes/entry)\n",
      static_cast<long long>(index_bytes), params.length,
      params.num_samples, static_cast<long long>(index.TotalEntries()),
      static_cast<double>(index_bytes) / n,
      static_cast<double>(index_bytes) /
          std::max<double>(1.0, static_cast<double>(index.TotalEntries())));
  return Status::OK();
}

Status RunStats(const CliInvocation& invocation, std::ostream& out) {
  RWDOM_ASSIGN_OR_RETURN(LoadedSubstrate loaded,
                         ResolveSubstrate(invocation));
  const GraphSubstrate& substrate = loaded.substrate;
  if (!substrate.weighted()) {
    const Graph& graph = *substrate.graph();
    GraphStats stats = ComputeGraphStats(graph);
    out << stats.ToString() << "\n";
    out << StrFormat(
        "triangles=%lld avg_clustering=%.4f transitivity=%.4f\n",
        static_cast<long long>(CountTriangles(graph)),
        AverageClusteringCoefficient(graph),
        GlobalClusteringCoefficient(graph));
    return PrintMemoryFootprint(invocation, substrate, out);
  }
  const WeightedGraph& graph = *substrate.weighted_graph();
  NodeId sinks = 0;
  double total_weight = 0.0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (graph.out_degree(u) == 0) ++sinks;
    total_weight += graph.total_out_weight(u);
  }
  out << StrFormat("n=%d arcs=%lld (%s)\n", graph.num_nodes(),
                   static_cast<long long>(graph.num_arcs()),
                   substrate.kind().c_str());
  out << StrFormat(
      "avg_out_degree=%.2f max_out_degree=%d sinks=%d "
      "total_arc_weight=%.4g\n",
      graph.num_nodes() > 0
          ? static_cast<double>(graph.num_arcs()) /
                static_cast<double>(graph.num_nodes())
          : 0.0,
      graph.max_out_degree(), sinks, total_weight);
  return PrintMemoryFootprint(invocation, substrate, out);
}

Status RunGenerate(const CliInvocation& invocation, std::ostream& out) {
  const std::string model = FlagOr(invocation, "model", "");
  const std::string out_path = FlagOr(invocation, "out", "");
  if (out_path.empty()) {
    return Status::InvalidArgument("--out=FILE is required");
  }
  RWDOM_ASSIGN_OR_RETURN(int64_t n64, IntFlagOr(invocation, "n", 0));
  RWDOM_ASSIGN_OR_RETURN(int64_t m, IntFlagOr(invocation, "m", 0));
  RWDOM_ASSIGN_OR_RETURN(int64_t seed, IntFlagOr(invocation, "seed", 42));
  RWDOM_ASSIGN_OR_RETURN(bool weighted,
                         BoolFlagOr(invocation, "weighted", false));
  RWDOM_ASSIGN_OR_RETURN(bool directed,
                         BoolFlagOr(invocation, "directed", false));
  if (directed && !weighted) {
    return Status::InvalidArgument(
        "--directed output requires --weighted=true (arc-list format)");
  }
  const NodeId n = static_cast<NodeId>(n64);

  Result<Graph> graph = Status::InvalidArgument(
      "unknown --model (want ba, plc, er, ws, or cl): " + model);
  if (model == "ba") {
    RWDOM_ASSIGN_OR_RETURN(int64_t attach,
                           IntFlagOr(invocation, "attach", 5));
    graph = GenerateBarabasiAlbert(n, static_cast<int32_t>(attach),
                                   static_cast<uint64_t>(seed));
  } else if (model == "plc") {
    RWDOM_ASSIGN_OR_RETURN(int64_t communities,
                           IntFlagOr(invocation, "communities", 16));
    RWDOM_ASSIGN_OR_RETURN(double mixing,
                           DoubleFlagOr(invocation, "mixing", 0.08));
    graph = GeneratePowerLawCommunity(n, m,
                                      static_cast<int32_t>(communities),
                                      mixing, static_cast<uint64_t>(seed));
  } else if (model == "er") {
    graph = GenerateErdosRenyiGnm(n, m, static_cast<uint64_t>(seed));
  } else if (model == "ws") {
    RWDOM_ASSIGN_OR_RETURN(int64_t k, IntFlagOr(invocation, "k", 4));
    RWDOM_ASSIGN_OR_RETURN(double beta,
                           DoubleFlagOr(invocation, "beta", 0.1));
    graph = GenerateWattsStrogatz(n, static_cast<int32_t>(k), beta,
                                  static_cast<uint64_t>(seed));
  } else if (model == "cl") {
    RWDOM_ASSIGN_OR_RETURN(double gamma,
                           DoubleFlagOr(invocation, "gamma", 2.5));
    RWDOM_ASSIGN_OR_RETURN(double avg_degree,
                           DoubleFlagOr(invocation, "avg_degree", 10.0));
    graph = GenerateChungLu(n, gamma, avg_degree,
                            static_cast<uint64_t>(seed));
  }
  if (!graph.ok()) return graph.status();
  if (weighted) {
    // Deterministic pseudo-random weights over the generated topology;
    // --directed draws independent weights per arc direction.
    WeightedGraph wg = AttachRandomWeights(
        *graph, static_cast<uint64_t>(seed) + 1, directed);
    RWDOM_RETURN_IF_ERROR(SaveWeightedEdgeList(
        wg, out_path,
        "generated by rwdom (" + model +
            (directed ? ", weighted directed)" : ", weighted)")));
    out << StrFormat("wrote %s: n=%d arcs=%lld (%s)\n", out_path.c_str(),
                     wg.num_nodes(), static_cast<long long>(wg.num_arcs()),
                     directed ? "weighted directed" : "weighted");
    return Status::OK();
  }
  RWDOM_RETURN_IF_ERROR(
      SaveEdgeList(*graph, out_path, "generated by rwdom (" + model + ")"));
  out << StrFormat("wrote %s: n=%d m=%lld\n", out_path.c_str(),
                   graph->num_nodes(),
                   static_cast<long long>(graph->num_edges()));
  return Status::OK();
}

Status RunSelect(const CliInvocation& invocation, std::ostream& out) {
  RWDOM_ASSIGN_OR_RETURN(LoadedSubstrate loaded,
                         ResolveSubstrate(invocation));
  const GraphSubstrate& substrate = loaded.substrate;
  RWDOM_ASSIGN_OR_RETURN(SelectorParams params,
                         ResolveSelectorParams(invocation));
  RWDOM_ASSIGN_OR_RETURN(int64_t k, IntFlagOr(invocation, "k", 10));
  if (k < 0) return Status::InvalidArgument("--k must be >= 0");
  RWDOM_ASSIGN_OR_RETURN(std::string algorithm,
                         ResolveAlgorithmName(invocation, &params));
  RWDOM_ASSIGN_OR_RETURN(
      std::unique_ptr<Selector> selector,
      MakeSelector(algorithm, &substrate.model(), params));

  SelectionResult result = selector->Select(static_cast<int32_t>(k));
  out << StrFormat("%s selected %zu seeds on the %s substrate in %.3f s\n"
                   "seeds:",
                   algorithm.c_str(), result.selected.size(),
                   substrate.kind().c_str(), result.seconds);
  for (NodeId u : result.selected) out << " " << u;
  out << "\n";

  MetricsResult metrics =
      SampledMetrics(substrate.model(), result.selected, params.length,
                     /*num_samples=*/500, params.seed + 1);
  out << StrFormat("AHT=%.4f EHN=%.1f (L=%d, metric R=500)\n", metrics.aht,
                   metrics.ehn, params.length);

  // Optional: persist the inverted index for reuse across runs.
  const std::string save_index = FlagOr(invocation, "save_index", "");
  if (!save_index.empty()) {
    const auto* approx = dynamic_cast<const ApproxGreedy*>(selector.get());
    if (approx == nullptr || approx->index() == nullptr) {
      return Status::InvalidArgument(
          "--save_index only applies to ApproxF1/ApproxF2 "
          "(--method=index|index-celf)");
    }
    RWDOM_RETURN_IF_ERROR(
        WalkIndexSerializer::Save(*approx->index(), save_index));
    out << "index saved to " << save_index << "\n";
  }
  return Status::OK();
}

Status RunEvaluate(const CliInvocation& invocation, std::ostream& out) {
  RWDOM_ASSIGN_OR_RETURN(LoadedSubstrate loaded,
                         ResolveSubstrate(invocation));
  const GraphSubstrate& substrate = loaded.substrate;
  RWDOM_ASSIGN_OR_RETURN(SelectorParams params,
                         ResolveSelectorParams(invocation));
  const std::string seeds_text = FlagOr(invocation, "seeds", "");
  if (seeds_text.empty()) {
    return Status::InvalidArgument("--seeds=a,b,c is required");
  }
  RWDOM_ASSIGN_OR_RETURN(
      std::vector<NodeId> seeds,
      ParseSeedList(seeds_text, substrate.num_nodes()));
  RWDOM_ASSIGN_OR_RETURN(int64_t metric_r, IntFlagOr(invocation, "R", 500));
  MetricsResult metrics =
      SampledMetrics(substrate.model(), seeds, params.length,
                     static_cast<int32_t>(metric_r), params.seed);
  out << StrFormat("k=%zu L=%d R=%lld\nAHT=%.4f\nEHN=%.1f\n", seeds.size(),
                   params.length, static_cast<long long>(metric_r),
                   metrics.aht, metrics.ehn);
  return Status::OK();
}

Status RunKnn(const CliInvocation& invocation, std::ostream& out) {
  RWDOM_ASSIGN_OR_RETURN(LoadedSubstrate loaded,
                         ResolveSubstrate(invocation));
  const GraphSubstrate& substrate = loaded.substrate;
  RWDOM_ASSIGN_OR_RETURN(SelectorParams params,
                         ResolveSelectorParams(invocation));
  RWDOM_ASSIGN_OR_RETURN(int64_t query, IntFlagOr(invocation, "query", -1));
  RWDOM_ASSIGN_OR_RETURN(int64_t k, IntFlagOr(invocation, "k", 10));
  if (query < 0 || query >= substrate.num_nodes()) {
    return Status::OutOfRange("--query must name a node of the graph");
  }
  if (k < 0) return Status::InvalidArgument("--k must be >= 0");
  const std::string mode = FlagOr(invocation, "mode", "exact");
  std::vector<HittingTimeNeighbor> rows;
  if (mode == "exact") {
    rows = ExactHittingTimeKnn(substrate.model(),
                               static_cast<NodeId>(query),
                               static_cast<int32_t>(k), params.length);
  } else if (mode == "sampled") {
    auto source = substrate.MakeWalkSource(params.seed);
    rows = SampledHittingTimeKnn(source.get(), static_cast<NodeId>(query),
                                 static_cast<int32_t>(k), params.length,
                                 params.num_samples);
  } else {
    return Status::InvalidArgument("--mode must be exact or sampled");
  }
  TablePrinter table({"rank", "node", "h^L(node -> query)"});
  for (size_t i = 0; i < rows.size(); ++i) {
    table.AddRow({std::to_string(i + 1), std::to_string(rows[i].node),
                  StrFormat("%.4f", rows[i].hitting_time)});
  }
  out << table.ToString();
  return Status::OK();
}

Status RunCover(const CliInvocation& invocation, std::ostream& out) {
  RWDOM_ASSIGN_OR_RETURN(LoadedSubstrate loaded,
                         ResolveSubstrate(invocation));
  const GraphSubstrate& substrate = loaded.substrate;
  RWDOM_ASSIGN_OR_RETURN(SelectorParams params,
                         ResolveSelectorParams(invocation));
  RWDOM_ASSIGN_OR_RETURN(double alpha,
                         DoubleFlagOr(invocation, "alpha", 0.9));
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("--alpha must be in [0, 1]");
  }
  ApproxGreedyOptions options{.length = params.length,
                              .num_replicates = params.num_samples,
                              .seed = params.seed,
                              .lazy = true};
  MinSeedCoverResult cover =
      MinSeedCover(substrate.model(), alpha, options);
  out << StrFormat("alpha=%.2f -> %zu seeds (target %s) in %.3f s\nseeds:",
                   alpha, cover.selected.size(),
                   cover.reached_target ? "reached" : "NOT reached",
                   cover.seconds);
  for (NodeId u : cover.selected) out << " " << u;
  out << "\n";
  return Status::OK();
}

}  // namespace

std::string CliUsage() {
  return
      "rwdom — random-walk domination toolkit (Li et al., ICDE'14)\n"
      "\n"
      "usage: rwdom COMMAND [--flag=value ...]\n"
      "\n"
      "commands:\n"
      "  datasets   list the paper's Table-2 datasets (+ -w/-wd variants)\n"
      "  stats      graph statistics and memory footprint\n"
      "             (--graph=FILE | --dataset=NAME [--with_index=1])\n"
      "  generate   synthesize a graph (--model=ba|plc|er|ws|cl --n=N\n"
      "             [--m=M --weighted=1 --directed=1 ...] --out=FILE)\n"
      "  select     pick k seeds (--algorithm=ApproxF2 | --problem=F1|F2\n"
      "             --method=dp|sampling|index|index-celf; --k=K\n"
      "             [--L --R --seed --save_index=FILE])\n"
      "  evaluate   score a seed set (--seeds=1,2,3 [--L --R])\n"
      "  cover      minimum seeds for alpha coverage (--alpha=0.9)\n"
      "  knn        truncated-hitting-time neighbors (--query=NODE --k=10\n"
      "             [--mode=exact|sampled])\n"
      "  help       this text\n"
      "\n"
      "graph input: --graph=EDGELIST or --dataset=NAME [--data_dir=DIR].\n"
      "  Edge lists may carry a third weight column (autodetected; override\n"
      "  with --weighted=auto|yes|no) and load as digraphs via\n"
      "  --directed=1. Dataset variants: NAME-w (weighted), NAME-wd\n"
      "  (weighted directed). Every command runs on every substrate.\n"
      "algorithms: Degree Dominate Random DPF1 DPF2 SamplingF1 SamplingF2\n"
      "            ApproxF1 ApproxF2 EdgeGreedy\n"
      "threading:  --threads=N (or RWDOM_THREADS=N; default: all cores).\n"
      "            Results are identical for every thread count.\n"
      "Unknown flags are rejected; each command lists its own in `help`.\n";
}

Result<CliInvocation> ParseCliArgs(int argc, const char* const* argv) {
  if (argc < 2) {
    return Status::InvalidArgument("missing command (try `rwdom help`)");
  }
  CliInvocation invocation;
  invocation.command = argv[1];
  if (invocation.command == "--help" || invocation.command == "-h") {
    invocation.command = "help";
  }
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("expected --flag=value, got: " +
                                     std::string(arg));
    }
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("flag needs a value: --" +
                                     std::string(arg));
    }
    invocation.flags[std::string(arg.substr(0, eq))] =
        std::string(arg.substr(eq + 1));
  }
  return invocation;
}

Status RunCliCommand(const CliInvocation& invocation, std::ostream& out) {
  RWDOM_RETURN_IF_ERROR(ValidateFlags(invocation));
  if (invocation.flags.count("threads") > 0) {
    // Global --threads flag (equivalent to the RWDOM_THREADS env var).
    RWDOM_ASSIGN_OR_RETURN(int64_t threads,
                           IntFlagOr(invocation, "threads", 0));
    if (threads < 1 || threads > 1024) {
      return Status::InvalidArgument("--threads must be in [1, 1024]");
    }
    SetNumThreads(static_cast<int>(threads));
  }
  if (invocation.command == "datasets") return RunDatasets(invocation, out);
  if (invocation.command == "stats") return RunStats(invocation, out);
  if (invocation.command == "generate") return RunGenerate(invocation, out);
  if (invocation.command == "select") return RunSelect(invocation, out);
  if (invocation.command == "evaluate") return RunEvaluate(invocation, out);
  if (invocation.command == "cover") return RunCover(invocation, out);
  if (invocation.command == "knn") return RunKnn(invocation, out);
  if (invocation.command == "help") {
    out << CliUsage();
    return Status::OK();
  }
  return Status::NotFound("unknown command: " + invocation.command);
}

int CliMain(int argc, const char* const* argv) {
  Result<CliInvocation> invocation = ParseCliArgs(argc, argv);
  if (!invocation.ok()) {
    std::fprintf(stderr, "%s\n%s", invocation.status().ToString().c_str(),
                 CliUsage().c_str());
    return 2;
  }
  Status status = RunCliCommand(*invocation, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace rwdom
