#include "cli/cli.h"

#include <cstdio>
#include <iostream>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "util/fault.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace rwdom {

std::string CliUsage() {
  std::string text =
      "rwdom — random-walk domination toolkit (Li et al., ICDE'14)\n"
      "\n"
      "usage: rwdom COMMAND [--flag=value ...]\n"
      "       rwdom help COMMAND   detailed flag spec for one command\n"
      "\n"
      "commands:\n";
  for (const CommandDef& command : Commands()) {
    text += StrFormat("  %-9s  %s\n", command.name.c_str(),
                      command.summary.c_str());
  }
  text +=
      "\n"
      "graph input: --graph=EDGELIST or --dataset=NAME [--data_dir=DIR].\n"
      "  Edge lists may carry a third weight column (autodetected; override\n"
      "  with --weighted=auto|yes|no) and load as digraphs via\n"
      "  --directed=1. Dataset variants: NAME-w (weighted), NAME-wd\n"
      "  (weighted directed). Every command runs on every substrate.\n"
      "algorithms: Degree Dominate Random DPF1 DPF2 SamplingF1 SamplingF2\n"
      "            ApproxF1 ApproxF2 EdgeGreedy\n"
      "global:     --threads=N (or RWDOM_THREADS=N; default: all cores).\n"
      "            Results are identical for every thread count.\n"
      "            --format=text|json — structured output, one JSON\n"
      "            object per query, identical numbers to the text form.\n"
      "batching:   rwdom batch SCRIPT.jsonl runs many queries on one warm\n"
      "            engine (graph loaded once, walk index built once per\n"
      "            (L, R, seed)).\n"
      "serving:    rwdom serve --port=P exposes the same warm engine over\n"
      "            TCP (JSONL in, JSONL out, many concurrent clients);\n"
      "            rwdom client --port=P sends queries to it.\n"
      "Unknown commands and flags are rejected with a closest-match hint.\n";
  return text;
}

Result<CliInvocation> ParseCliArgs(int argc, const char* const* argv) {
  if (argc < 2) {
    return Status::InvalidArgument("missing command (try `rwdom help`)");
  }
  CliInvocation invocation;
  invocation.command = argv[1];
  if (invocation.command == "--help" || invocation.command == "-h") {
    invocation.command = "help";
  }
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      invocation.positionals.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("flag needs a value: --" +
                                     std::string(arg));
    }
    std::string key(arg.substr(0, eq));
    std::string value(arg.substr(eq + 1));
    invocation.ordered_flags.emplace_back(key, value);
    invocation.flags[std::move(key)] = std::move(value);
  }
  return invocation;
}

Status RunCliCommand(const CliInvocation& invocation, std::ostream& out) {
  const CommandDef* command = FindCommand(invocation.command);
  if (command == nullptr) {
    return Status::NotFound("unknown command: " + invocation.command +
                            SuggestCommand(invocation.command));
  }
  RWDOM_RETURN_IF_ERROR(ValidateInvocation(*command, invocation));
  if (invocation.flags.count("threads") > 0) {
    // Global --threads flag (equivalent to the RWDOM_THREADS env var).
    RWDOM_ASSIGN_OR_RETURN(int64_t threads,
                           IntFlagOr(invocation, "threads", 0));
    if (threads < 1 || threads > 1024) {
      return Status::InvalidArgument("--threads must be in [1, 1024]");
    }
    SetNumThreads(static_cast<int>(threads));
  }
  OutputFormat format = OutputFormat::kText;
  const std::string format_text = FlagOr(invocation, "format", "text");
  if (format_text == "json") {
    format = OutputFormat::kJson;
  } else if (format_text != "text") {
    return Status::InvalidArgument("--format wants text or json, got: " +
                                   format_text);
  }
  CommandEnv env{invocation, out, format, /*warm_context=*/nullptr};
  return command->handler(env);
}

int CliMain(int argc, const char* const* argv) {
  // Fault-injection schedules ride in on the environment so child
  // processes under test (crash-consistency, bench_degradation) can be
  // armed without touching their command lines. No-op when unset.
  if (Status faults = ArmFaultsFromEnv(); !faults.ok()) {
    std::fprintf(stderr, "RWDOM_FAULTS: %s\n", faults.ToString().c_str());
    return 2;
  }
  Result<CliInvocation> invocation = ParseCliArgs(argc, argv);
  if (!invocation.ok()) {
    std::fprintf(stderr, "%s\n%s", invocation.status().ToString().c_str(),
                 CliUsage().c_str());
    return 2;
  }
  Status status = RunCliCommand(*invocation, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace rwdom
