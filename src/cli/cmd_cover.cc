// `rwdom cover`: minimum seeds for alpha coverage (greedy partial cover).
#include <optional>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "service/engine.h"

namespace rwdom {
namespace {

Status RunCover(const CommandEnv& env) {
  std::optional<QueryContext> local;
  RWDOM_ASSIGN_OR_RETURN(QueryContext * context,
                         AcquireContext(env, &local));
  CoverRequest request;
  RWDOM_ASSIGN_OR_RETURN(request.params,
                         ResolveSelectorParams(env.invocation));
  RWDOM_ASSIGN_OR_RETURN(request.alpha,
                         DoubleFlagOr(env.invocation, "alpha", 0.9));
  if (request.alpha < 0.0 || request.alpha > 1.0) {
    return Status::InvalidArgument("--alpha must be in [0, 1]");
  }

  RWDOM_ASSIGN_OR_RETURN(CoverResponse response, Cover(*context, request));
  Render(ServiceResponse(std::move(response)), env.format, env.out);
  return Status::OK();
}

}  // namespace

CommandDef MakeCoverCommand() {
  CommandDef def;
  def.name = "cover";
  def.summary = "minimum seeds for alpha coverage";
  def.usage =
      "rwdom cover (--graph=FILE | --dataset=NAME) --alpha=0.9 [--L=6 "
      "--R=100 --seed=42]";
  def.flags = WithSubstrateFlags({
      {"alpha", "X", "coverage target in [0, 1] (default 0.9)"},
      {"L", "N", "walk budget (default 6)"},
      {"R", "N", "index replicates (default 100)"},
      {"seed", "N", "master walk seed (default 42)"},
  });
  def.batchable = true;
  def.handler = RunCover;
  return def;
}

}  // namespace rwdom
