// `rwdom cache`: admin surface over a --cache_dir snapshot directory.
//
// Subcommands (first positional):
//   ls      one row per snapshot: file, format version, artifact key,
//           shape, size — header-only reads, cheap on big caches.
//   verify  deep check: recompute every checksum and re-validate
//           structure; any failing snapshot fails the command.
//   rm      delete by --key=CANONICAL (the exact string `ls` and
//           server_stats print) or --all.
//
// Multi-graph caches (a `serve --graph NAME=PATH` fleet) lay named
// tenants out under one level of subdirectories; every subcommand walks
// the whole tree and accepts --graph=NAME to scope to one tenant. The
// graph column/key appears only when the cache is tenant-aware (named
// subdirectories exist or --graph was passed), so single-tenant output
// is byte-identical to the pre-tenancy format.
//
// The command never needs the graph data: snapshots carry their
// identity in the ArtifactKey header, which is the point of the key
// redesign.
#include <cstdint>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "persist/artifact_cache.h"
#include "persist/snapshot.h"
#include "service/graph_registry.h"
#include "util/json.h"
#include "util/strings.h"

namespace rwdom {
namespace {

namespace fs = std::filesystem;

std::string KeyLabel(const SnapshotMeta& meta) {
  return meta.key.has_value() ? meta.key->CanonicalString()
                              : "(v1: no artifact key)";
}

/// The filtered tree plus whether output should carry the graph
/// dimension at all (the v2 byte-identity gate).
struct CacheView {
  std::vector<CacheTreeEntry> entries;
  bool tenant_aware = false;
};

std::string EntryPath(const std::string& dir, const CacheTreeEntry& entry) {
  if (entry.graph == kDefaultGraphName) {
    return (fs::path(dir) / entry.file).string();
  }
  return (fs::path(dir) / entry.graph / entry.file).string();
}

Result<CacheView> ResolveCacheView(const std::string& dir,
                                   const CommandEnv& env) {
  CacheView view;
  RWDOM_ASSIGN_OR_RETURN(view.entries, ListSnapshotTree(dir));
  for (const CacheTreeEntry& entry : view.entries) {
    if (entry.graph != kDefaultGraphName) view.tenant_aware = true;
  }
  const std::string filter = FlagOr(env.invocation, "graph", "");
  if (!filter.empty()) {
    if (!IsValidGraphName(filter)) {
      return Status::InvalidArgument("invalid graph name \"" + filter +
                                     "\" (use [A-Za-z0-9_.-]+)");
    }
    view.tenant_aware = true;
    std::vector<CacheTreeEntry> kept;
    for (CacheTreeEntry& entry : view.entries) {
      if (entry.graph == filter) kept.push_back(std::move(entry));
    }
    view.entries = std::move(kept);
  }
  return view;
}

Status RunCacheLs(const std::string& dir, const CommandEnv& env) {
  RWDOM_ASSIGN_OR_RETURN(CacheView view, ResolveCacheView(dir, env));
  if (env.format == OutputFormat::kJson) {
    JsonWriter json;
    json.BeginObject();
    json.Key("cache").BeginObject();
    json.Key("dir").String(dir);
    json.Key("snapshots").BeginArray();
    for (const CacheTreeEntry& entry : view.entries) {
      auto meta = WalkIndexSerializer::Inspect(EntryPath(dir, entry),
                                               /*verify=*/false);
      json.BeginObject();
      if (view.tenant_aware) json.Key("graph").String(entry.graph);
      json.Key("file").String(entry.file);
      if (meta.ok()) {
        json.Key("version").Int(meta->version);
        if (meta->key.has_value()) {
          json.Key("key").String(meta->key->CanonicalString());
        }
        json.Key("num_nodes").Int(meta->num_nodes);
        json.Key("num_replicates").Int(meta->num_replicates);
        json.Key("total_entries").Int(meta->total_entries);
        json.Key("file_bytes").Int(meta->file_bytes);
      } else {
        json.Key("error").String(meta.status().message());
      }
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    json.EndObject();
    env.out << json.ToString() << "\n";
    return Status::OK();
  }
  env.out << StrFormat("cache %s: %lld snapshot(s)\n", dir.c_str(),
                       static_cast<long long>(view.entries.size()));
  for (const CacheTreeEntry& entry : view.entries) {
    auto meta = WalkIndexSerializer::Inspect(EntryPath(dir, entry),
                                             /*verify=*/false);
    const std::string label =
        view.tenant_aware ? entry.graph + "/" + entry.file : entry.file;
    if (!meta.ok()) {
      env.out << StrFormat("  %s  UNREADABLE: %s\n", label.c_str(),
                           meta.status().message().c_str());
      continue;
    }
    env.out << StrFormat(
        "  %s  v%u  %s  nodes=%d replicates=%d entries=%lld bytes=%lld\n",
        label.c_str(), meta->version, KeyLabel(*meta).c_str(),
        meta->num_nodes, meta->num_replicates,
        static_cast<long long>(meta->total_entries),
        static_cast<long long>(meta->file_bytes));
  }
  return Status::OK();
}

Status RunCacheVerify(const std::string& dir, const CommandEnv& env) {
  RWDOM_ASSIGN_OR_RETURN(CacheView view, ResolveCacheView(dir, env));
  int64_t failed = 0;
  JsonWriter json;
  if (env.format == OutputFormat::kJson) {
    json.BeginObject();
    json.Key("cache_verify").BeginObject();
    json.Key("dir").String(dir);
    json.Key("snapshots").BeginArray();
  }
  for (const CacheTreeEntry& entry : view.entries) {
    auto meta = WalkIndexSerializer::Inspect(EntryPath(dir, entry),
                                             /*verify=*/true);
    const std::string label =
        view.tenant_aware ? entry.graph + "/" + entry.file : entry.file;
    if (env.format == OutputFormat::kJson) {
      json.BeginObject();
      if (view.tenant_aware) json.Key("graph").String(entry.graph);
      json.Key("file").String(entry.file);
      json.Key("ok").Bool(meta.ok());
      if (meta.ok()) {
        json.Key("key").String(KeyLabel(*meta));
      } else {
        json.Key("error").String(meta.status().message());
      }
      json.EndObject();
    } else if (meta.ok()) {
      env.out << StrFormat("  %s  OK  %s\n", label.c_str(),
                           KeyLabel(*meta).c_str());
    } else {
      env.out << StrFormat("  %s  FAIL: %s\n", label.c_str(),
                           meta.status().message().c_str());
    }
    if (!meta.ok()) ++failed;
  }
  if (env.format == OutputFormat::kJson) {
    json.EndArray();
    json.Key("checked").Int(static_cast<int64_t>(view.entries.size()));
    json.Key("failed").Int(failed);
    json.EndObject();
    json.EndObject();
    env.out << json.ToString() << "\n";
  } else {
    env.out << StrFormat("verified %lld snapshot(s), %lld failed\n",
                         static_cast<long long>(view.entries.size()),
                         static_cast<long long>(failed));
  }
  if (failed > 0) {
    return Status::Corruption(
        StrFormat("%lld snapshot(s) failed verification in %s",
                  static_cast<long long>(failed), dir.c_str()));
  }
  return Status::OK();
}

Status RunCacheRm(const std::string& dir, const CommandEnv& env) {
  const std::string key_text = FlagOr(env.invocation, "key", "");
  RWDOM_ASSIGN_OR_RETURN(bool all,
                         BoolFlagOr(env.invocation, "all", false));
  if (all != key_text.empty()) {
    return Status::InvalidArgument(
        "cache rm needs exactly one of --key=CANONICAL or --all");
  }
  RWDOM_ASSIGN_OR_RETURN(CacheView view, ResolveCacheView(dir, env));
  std::vector<CacheTreeEntry> doomed;
  if (all) {
    doomed = std::move(view.entries);
  } else {
    RWDOM_ASSIGN_OR_RETURN(ArtifactKey key, ArtifactKey::Parse(key_text));
    const std::string name = key.FileStem() + kSnapshotExtension;
    for (CacheTreeEntry& entry : view.entries) {
      if (entry.file == name) doomed.push_back(std::move(entry));
    }
    if (doomed.empty()) {
      return Status::NotFound("no snapshot for key " + key_text + " in " +
                              dir);
    }
  }
  for (const CacheTreeEntry& entry : doomed) {
    std::error_code ec;
    fs::remove(EntryPath(dir, entry), ec);
    if (ec) {
      return Status::IoError("cannot remove " + entry.file + ": " +
                             ec.message());
    }
  }
  if (env.format == OutputFormat::kJson) {
    JsonWriter json;
    json.BeginObject();
    json.Key("cache_rm").BeginObject();
    json.Key("dir").String(dir);
    json.Key("removed").Int(static_cast<int64_t>(doomed.size()));
    json.EndObject();
    json.EndObject();
    env.out << json.ToString() << "\n";
  } else {
    env.out << StrFormat("removed %lld snapshot(s) from %s\n",
                         static_cast<long long>(doomed.size()), dir.c_str());
  }
  return Status::OK();
}

Status RunCache(const CommandEnv& env) {
  const std::string dir = FlagOr(env.invocation, "cache_dir", "");
  if (dir.empty()) {
    return Status::InvalidArgument("cache requires --cache_dir=DIR");
  }
  const std::string verb = env.invocation.positionals.empty()
                               ? "ls"
                               : env.invocation.positionals.front();
  if (verb == "ls") return RunCacheLs(dir, env);
  if (verb == "verify") return RunCacheVerify(dir, env);
  if (verb == "rm") return RunCacheRm(dir, env);
  return Status::InvalidArgument("unknown cache subcommand `" + verb +
                                 "` (expected ls, verify or rm)");
}

}  // namespace

CommandDef MakeCacheCommand() {
  CommandDef def;
  def.name = "cache";
  def.summary = "inspect or prune a --cache_dir snapshot directory";
  def.usage =
      "rwdom cache [ls|verify|rm] --cache_dir=DIR [--graph=NAME] "
      "[--key=CANONICAL | --all]\n       keys are the canonical "
      "artifact-key strings server_stats and `cache ls` print, e.g. "
      "\"L=6,R=100,seed=42,substrate=0123456789abcdef\"; multi-graph "
      "caches keep named tenants under DIR/NAME/ subdirectories";
  def.flags = {
      {"cache_dir", "DIR", "snapshot directory (same flag `serve` takes)"},
      {"graph", "NAME", "scope to one tenant of a multi-graph cache "
                        "(\"default\" = the root-level snapshots)"},
      {"key", "CANONICAL", "for rm: one artifact key, canonical spelling"},
      {"all", "yes|no", "for rm: remove every snapshot (default no)"},
  };
  def.max_positionals = 1;
  def.positional_hint = "[ls|verify|rm]";
  def.handler = RunCache;
  return def;
}

}  // namespace rwdom
