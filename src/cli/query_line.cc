#include "cli/query_line.h"

#include <sstream>
#include <utility>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "util/strings.h"

namespace rwdom {

CliInvocation RequestToInvocation(const ParsedRequest& request) {
  CliInvocation invocation;
  invocation.command = request.command;
  for (const auto& [flag, value] : request.flags) {
    invocation.ordered_flags.emplace_back(flag, value);
    invocation.flags[flag] = value;
  }
  return invocation;
}

Result<CliInvocation> ParseQueryLine(const std::string& line) {
  RWDOM_ASSIGN_OR_RETURN(ParsedRequest request, ParseRequestLine(line));
  if (!request.graph.empty()) {
    return Status::InvalidArgument(
        "\"graph\" is fixed by the batch invocation and cannot appear in "
        "script lines");
  }
  return RequestToInvocation(request);
}

Result<const CommandDef*> ResolveQueryLine(const CliInvocation& invocation) {
  const CommandDef* command = FindCommand(invocation.command);
  if (command == nullptr) {
    return Status::NotFound("unknown command: " + invocation.command +
                            SuggestCommand(invocation.command));
  }
  if (!command->batchable) {
    return Status::InvalidArgument(
        "`" + invocation.command +
        "` is not a query command and cannot run in a batch");
  }
  for (const auto& [flag, value] : invocation.flags) {
    if (IsSubstrateFlag(flag)) {
      return Status::InvalidArgument(
          "--" + flag +
          " is fixed by the batch invocation and cannot appear in script "
          "lines");
    }
    for (const FlagDef& global : GlobalFlagDefs()) {
      if (flag == global.name) {
        return Status::InvalidArgument(
            "global flag --" + flag +
            " must be set on the batch invocation itself");
      }
    }
  }
  RWDOM_RETURN_IF_ERROR(ValidateInvocation(*command, invocation));
  return command;
}

Status ExecuteParsedRequest(const ParsedRequest& request,
                            QueryContext& context, OutputFormat format,
                            std::ostream& out) {
  const CliInvocation invocation = RequestToInvocation(request);
  RWDOM_ASSIGN_OR_RETURN(const CommandDef* command,
                         ResolveQueryLine(invocation));
  CommandEnv env{invocation, out, format, &context};
  return command->handler(env);
}

Status ExecuteQueryLine(const std::string& line, QueryContext& context,
                        OutputFormat format, std::ostream& out) {
  RWDOM_ASSIGN_OR_RETURN(ParsedRequest request, ParseRequestLine(line));
  if (!request.graph.empty()) {
    return Status::InvalidArgument(
        "\"graph\" is fixed by the batch invocation and cannot appear in "
        "script lines");
  }
  return ExecuteParsedRequest(request, context, format, out);
}

Status ExecuteRequestToJsonLine(const ParsedRequest& request,
                                QueryContext& context,
                                std::string* response) {
  std::ostringstream out;
  RWDOM_RETURN_IF_ERROR(
      ExecuteParsedRequest(request, context, OutputFormat::kJson, out));
  *response = out.str();
  // Handlers terminate their one JSON line; the server frames lines
  // itself.
  while (!response->empty() && response->back() == '\n') {
    response->pop_back();
  }
  return Status::OK();
}

}  // namespace rwdom
