#include "cli/query_line.h"

#include <cmath>
#include <utility>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "util/json.h"
#include "util/strings.h"

namespace rwdom {
namespace {

// Renders a JSON flag value with the spelling the flag parsers expect:
// integral numbers without a decimal point (ParseInt64 must accept
// them), bools as true/false (BoolFlagOr accepts both).
Result<std::string> FlagValueToString(const JsonValue& value) {
  switch (value.type()) {
    case JsonValue::Type::kString:
      return value.string_value();
    case JsonValue::Type::kBool:
      return std::string(value.bool_value() ? "true" : "false");
    case JsonValue::Type::kNumber: {
      const double number = value.number_value();
      if (std::rint(number) == number &&
          std::abs(number) <= 9007199254740992.0) {
        return StrFormat("%lld", static_cast<long long>(number));
      }
      return StrFormat("%.17g", number);
    }
    default:
      return Status::InvalidArgument(
          "flag values must be strings, numbers or booleans");
  }
}

}  // namespace

Result<CliInvocation> ParseQueryLine(const std::string& line) {
  RWDOM_ASSIGN_OR_RETURN(JsonValue root, ParseJson(line));
  if (!root.is_object()) {
    return Status::InvalidArgument("script line must be a JSON object");
  }
  const JsonValue* command = root.Find("command");
  if (command == nullptr || !command->is_string()) {
    return Status::InvalidArgument(
        "script line needs a string \"command\" member");
  }
  CliInvocation invocation;
  invocation.command = command->string_value();
  for (const auto& [key, member] : root.object()) {
    if (key == "command") continue;
    if (key == "flags") {
      if (!member.is_object()) {
        return Status::InvalidArgument("\"flags\" must be a JSON object");
      }
      for (const auto& [flag, value] : member.object()) {
        RWDOM_ASSIGN_OR_RETURN(std::string text, FlagValueToString(value));
        invocation.flags[flag] = std::move(text);
      }
      continue;
    }
    return Status::InvalidArgument(
        "unknown script member \"" + key +
        "\" (lines carry \"command\" and \"flags\" only)");
  }
  return invocation;
}

Result<const CommandDef*> ResolveQueryLine(const CliInvocation& invocation) {
  const CommandDef* command = FindCommand(invocation.command);
  if (command == nullptr) {
    return Status::NotFound("unknown command: " + invocation.command +
                            SuggestCommand(invocation.command));
  }
  if (!command->batchable) {
    return Status::InvalidArgument(
        "`" + invocation.command +
        "` is not a query command and cannot run in a batch");
  }
  for (const auto& [flag, value] : invocation.flags) {
    if (IsSubstrateFlag(flag)) {
      return Status::InvalidArgument(
          "--" + flag +
          " is fixed by the batch invocation and cannot appear in script "
          "lines");
    }
    for (const FlagDef& global : GlobalFlagDefs()) {
      if (flag == global.name) {
        return Status::InvalidArgument(
            "global flag --" + flag +
            " must be set on the batch invocation itself");
      }
    }
  }
  RWDOM_RETURN_IF_ERROR(ValidateInvocation(*command, invocation));
  return command;
}

Status ExecuteQueryLine(const std::string& line, QueryContext& context,
                        OutputFormat format, std::ostream& out) {
  RWDOM_ASSIGN_OR_RETURN(CliInvocation invocation, ParseQueryLine(line));
  RWDOM_ASSIGN_OR_RETURN(const CommandDef* command,
                         ResolveQueryLine(invocation));
  CommandEnv env{invocation, out, format, &context};
  return command->handler(env);
}

}  // namespace rwdom
