// `rwdom batch <script.jsonl>`: executes a JSONL script of query
// requests against a single warm QueryContext, amortizing graph load and
// walk-index construction across queries.
//
// Script format — one JSON object per line (blank lines and #-comments
// skipped):
//
//   {"command": "select", "flags": {"problem": "F2", "k": 5, "L": 4}}
//   {"command": "evaluate", "flags": {"seeds": "0,3", "L": 4}}
//
// Lines reuse the exact flag-parsing path of one-shot invocations (see
// cli/query_line.h — the same protocol `rwdom serve` speaks over TCP),
// so per-query output is bit-identical to running each command cold with
// the same flags — the batch determinism tests pin this. The substrate
// is fixed once by the batch command's own --graph/--dataset flags;
// script lines must not carry substrate or global flags.
#include <fstream>
#include <utility>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "cli/query_line.h"
#include "util/json.h"
#include "util/strings.h"

namespace rwdom {
namespace {

Status AtLine(const std::string& script, int line_number, Status status) {
  if (status.ok()) return status;
  return Status(status.code(),
                StrFormat("%s:%d: %s", script.c_str(), line_number,
                          status.message().c_str()));
}

Status RunBatch(const CommandEnv& env) {
  if (env.warm_context != nullptr) {
    return Status::InvalidArgument(
        "batch scripts cannot invoke `batch` recursively");
  }
  if (env.invocation.positionals.size() != 1) {
    return Status::InvalidArgument(
        "usage: rwdom batch SCRIPT.jsonl (--graph=FILE | --dataset=NAME)");
  }
  const std::string& script_path = env.invocation.positionals.front();
  std::ifstream file(script_path);
  if (!file) {
    return Status::IoError("cannot read batch script: " + script_path);
  }

  // One substrate, one warm engine, many queries: this is the service
  // layer's load-once/query-many amortization end to end.
  RWDOM_ASSIGN_OR_RETURN(LoadedSubstrate loaded,
                         ResolveSubstrate(env.invocation));
  QueryContext context(std::move(loaded));

  int64_t queries = 0;
  int line_number = 0;
  std::string line;
  while (std::getline(file, line)) {
    ++line_number;
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;

    auto parsed = ParseQueryLine(std::string(trimmed));
    if (!parsed.ok()) {
      return AtLine(script_path, line_number, parsed.status());
    }
    const CliInvocation& invocation = *parsed;
    auto command = ResolveQueryLine(invocation);
    if (!command.ok()) {
      return AtLine(script_path, line_number, command.status());
    }

    ++queries;
    if (env.format == OutputFormat::kText) {
      env.out << StrFormat("=== query %lld: %s ===\n",
                           static_cast<long long>(queries),
                           invocation.command.c_str());
    }
    CommandEnv line_env{invocation, env.out, env.format, &context};
    RWDOM_RETURN_IF_ERROR(
        AtLine(script_path, line_number, (*command)->handler(line_env)));
  }

  // Amortization receipt: how much work the warm engine actually shared.
  if (env.format == OutputFormat::kJson) {
    JsonWriter json;
    json.BeginObject();
    json.Key("batch_summary").BeginObject();
    json.Key("script").String(script_path);
    json.Key("queries").Int(queries);
    json.Key("substrate").String(context.substrate().kind());
    json.Key("graph_loads").Int(1);
    json.Key("index_builds").Int(context.index_builds());
    json.Key("cached_bytes").Int(context.TotalMemoryBytes());
    json.EndObject();
    json.EndObject();
    env.out << json.ToString() << "\n";
  } else {
    env.out << StrFormat(
        "batch: %lld queries on one %s substrate (graph loads=1, "
        "index builds=%lld, cached bytes=%lld)\n",
        static_cast<long long>(queries), context.substrate().kind().c_str(),
        static_cast<long long>(context.index_builds()),
        static_cast<long long>(context.TotalMemoryBytes()));
  }
  return Status::OK();
}

}  // namespace

CommandDef MakeBatchCommand() {
  CommandDef def;
  def.name = "batch";
  def.summary = "run a JSONL script of queries on one warm engine";
  def.usage =
      "rwdom batch SCRIPT.jsonl (--graph=FILE | --dataset=NAME) "
      "[--format=json]\n       script lines: {\"command\": "
      "\"select|evaluate|knn|cover|stats\", \"flags\": {...}}";
  def.flags = WithSubstrateFlags({});
  def.max_positionals = 1;
  def.positional_hint = "SCRIPT.jsonl";
  def.handler = RunBatch;
  return def;
}

}  // namespace rwdom
