// `rwdom batch <script.jsonl>`: executes a JSONL script of query
// requests against a single warm QueryContext, amortizing graph load and
// walk-index construction across queries.
//
// Script format — one JSON object per line (blank lines and #-comments
// skipped):
//
//   {"command": "select", "flags": {"problem": "F2", "k": 5, "L": 4}}
//   {"command": "evaluate", "flags": {"seeds": "0,3", "L": 4}}
//
// Lines reuse the exact flag-parsing path of one-shot invocations (flag
// values may be JSON strings, numbers or bools), so per-query output is
// bit-identical to running each command cold with the same flags — the
// batch determinism tests pin this. The substrate is fixed once by the
// batch command's own --graph/--dataset flags; script lines must not
// carry substrate or global flags.
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "util/json.h"
#include "util/strings.h"

namespace rwdom {
namespace {

// Renders a JSON flag value with the spelling the flag parsers expect:
// integral numbers without a decimal point (ParseInt64 must accept
// them), bools as true/false (BoolFlagOr accepts both).
Result<std::string> FlagValueToString(const JsonValue& value) {
  switch (value.type()) {
    case JsonValue::Type::kString:
      return value.string_value();
    case JsonValue::Type::kBool:
      return std::string(value.bool_value() ? "true" : "false");
    case JsonValue::Type::kNumber: {
      const double number = value.number_value();
      if (std::rint(number) == number &&
          std::abs(number) <= 9007199254740992.0) {
        return StrFormat("%lld", static_cast<long long>(number));
      }
      return StrFormat("%.17g", number);
    }
    default:
      return Status::InvalidArgument(
          "flag values must be strings, numbers or booleans");
  }
}

Result<CliInvocation> ParseScriptLine(const std::string& line) {
  RWDOM_ASSIGN_OR_RETURN(JsonValue root, ParseJson(line));
  if (!root.is_object()) {
    return Status::InvalidArgument("script line must be a JSON object");
  }
  const JsonValue* command = root.Find("command");
  if (command == nullptr || !command->is_string()) {
    return Status::InvalidArgument(
        "script line needs a string \"command\" member");
  }
  CliInvocation invocation;
  invocation.command = command->string_value();
  for (const auto& [key, member] : root.object()) {
    if (key == "command") continue;
    if (key == "flags") {
      if (!member.is_object()) {
        return Status::InvalidArgument("\"flags\" must be a JSON object");
      }
      for (const auto& [flag, value] : member.object()) {
        RWDOM_ASSIGN_OR_RETURN(std::string text, FlagValueToString(value));
        invocation.flags[flag] = std::move(text);
      }
      continue;
    }
    return Status::InvalidArgument(
        "unknown script member \"" + key +
        "\" (lines carry \"command\" and \"flags\" only)");
  }
  return invocation;
}

Status AtLine(const std::string& script, int line_number, Status status) {
  if (status.ok()) return status;
  return Status(status.code(),
                StrFormat("%s:%d: %s", script.c_str(), line_number,
                          status.message().c_str()));
}

Status RunBatch(const CommandEnv& env) {
  if (env.warm_context != nullptr) {
    return Status::InvalidArgument(
        "batch scripts cannot invoke `batch` recursively");
  }
  if (env.invocation.positionals.size() != 1) {
    return Status::InvalidArgument(
        "usage: rwdom batch SCRIPT.jsonl (--graph=FILE | --dataset=NAME)");
  }
  const std::string& script_path = env.invocation.positionals.front();
  std::ifstream file(script_path);
  if (!file) {
    return Status::IoError("cannot read batch script: " + script_path);
  }

  // One substrate, one warm engine, many queries: this is the service
  // layer's load-once/query-many amortization end to end.
  RWDOM_ASSIGN_OR_RETURN(LoadedSubstrate loaded,
                         ResolveSubstrate(env.invocation));
  QueryContext context(std::move(loaded));

  int64_t queries = 0;
  int line_number = 0;
  std::string line;
  while (std::getline(file, line)) {
    ++line_number;
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;

    auto parsed = ParseScriptLine(std::string(trimmed));
    if (!parsed.ok()) {
      return AtLine(script_path, line_number, parsed.status());
    }
    const CliInvocation& invocation = *parsed;
    const CommandDef* command = FindCommand(invocation.command);
    if (command == nullptr) {
      return AtLine(script_path, line_number,
                    Status::NotFound("unknown command: " +
                                     invocation.command +
                                     SuggestCommand(invocation.command)));
    }
    if (!command->batchable) {
      return AtLine(
          script_path, line_number,
          Status::InvalidArgument(
              "`" + invocation.command +
              "` is not a query command and cannot run in a batch"));
    }
    for (const auto& [flag, value] : invocation.flags) {
      if (IsSubstrateFlag(flag)) {
        return AtLine(script_path, line_number,
                      Status::InvalidArgument(
                          "--" + flag +
                          " is fixed by the batch invocation and cannot "
                          "appear in script lines"));
      }
      for (const FlagDef& global : GlobalFlagDefs()) {
        if (flag == global.name) {
          return AtLine(
              script_path, line_number,
              Status::InvalidArgument(
                  "global flag --" + flag +
                  " must be set on the batch invocation itself"));
        }
      }
    }
    RWDOM_RETURN_IF_ERROR(
        AtLine(script_path, line_number,
               ValidateInvocation(*command, invocation)));

    ++queries;
    if (env.format == OutputFormat::kText) {
      env.out << StrFormat("=== query %lld: %s ===\n",
                           static_cast<long long>(queries),
                           invocation.command.c_str());
    }
    CommandEnv line_env{invocation, env.out, env.format, &context};
    RWDOM_RETURN_IF_ERROR(
        AtLine(script_path, line_number, command->handler(line_env)));
  }

  // Amortization receipt: how much work the warm engine actually shared.
  if (env.format == OutputFormat::kJson) {
    JsonWriter json;
    json.BeginObject();
    json.Key("batch_summary").BeginObject();
    json.Key("script").String(script_path);
    json.Key("queries").Int(queries);
    json.Key("substrate").String(context.substrate().kind());
    json.Key("graph_loads").Int(1);
    json.Key("index_builds").Int(context.index_builds());
    json.Key("cached_bytes").Int(context.TotalMemoryBytes());
    json.EndObject();
    json.EndObject();
    env.out << json.ToString() << "\n";
  } else {
    env.out << StrFormat(
        "batch: %lld queries on one %s substrate (graph loads=1, "
        "index builds=%lld, cached bytes=%lld)\n",
        static_cast<long long>(queries), context.substrate().kind().c_str(),
        static_cast<long long>(context.index_builds()),
        static_cast<long long>(context.TotalMemoryBytes()));
  }
  return Status::OK();
}

}  // namespace

CommandDef MakeBatchCommand() {
  CommandDef def;
  def.name = "batch";
  def.summary = "run a JSONL script of queries on one warm engine";
  def.usage =
      "rwdom batch SCRIPT.jsonl (--graph=FILE | --dataset=NAME) "
      "[--format=json]\n       script lines: {\"command\": "
      "\"select|evaluate|knn|cover|stats\", \"flags\": {...}}";
  def.flags = WithSubstrateFlags({});
  def.max_positionals = 1;
  def.positional_hint = "SCRIPT.jsonl";
  def.handler = RunBatch;
  return def;
}

}  // namespace rwdom
