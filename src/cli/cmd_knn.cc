// `rwdom knn`: truncated-hitting-time nearest neighbors of a query node.
#include <optional>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "service/engine.h"

namespace rwdom {
namespace {

Status RunKnn(const CommandEnv& env) {
  std::optional<QueryContext> local;
  RWDOM_ASSIGN_OR_RETURN(QueryContext * context,
                         AcquireContext(env, &local));
  KnnRequest request;
  RWDOM_ASSIGN_OR_RETURN(request.params,
                         ResolveSelectorParams(env.invocation));
  RWDOM_ASSIGN_OR_RETURN(int64_t query,
                         IntFlagOr(env.invocation, "query", -1));
  RWDOM_ASSIGN_OR_RETURN(int64_t k, IntFlagOr(env.invocation, "k", 10));
  if (query < 0 || query >= context->substrate().num_nodes()) {
    return Status::OutOfRange("--query must name a node of the graph");
  }
  request.query = static_cast<NodeId>(query);
  RWDOM_ASSIGN_OR_RETURN(request.k, CheckedInt32Flag("k", k, 0));
  const std::string mode = FlagOr(env.invocation, "mode", "exact");
  if (mode == "exact") {
    request.mode = KnnRequest::Mode::kExact;
  } else if (mode == "sampled") {
    request.mode = KnnRequest::Mode::kSampled;
  } else {
    return Status::InvalidArgument("--mode must be exact or sampled");
  }

  RWDOM_ASSIGN_OR_RETURN(KnnResponse response, Knn(*context, request));
  Render(ServiceResponse(std::move(response)), env.format, env.out);
  return Status::OK();
}

}  // namespace

CommandDef MakeKnnCommand() {
  CommandDef def;
  def.name = "knn";
  def.summary = "truncated-hitting-time nearest neighbors";
  def.usage =
      "rwdom knn (--graph=FILE | --dataset=NAME) --query=NODE [--k=10 "
      "--L=6 --mode=exact|sampled [--R=100 --seed=42]]";
  def.flags = WithSubstrateFlags({
      {"query", "NODE", "the node whose neighbors to rank"},
      {"k", "K", "neighbors to return (default 10)"},
      {"L", "N", "walk budget (default 6)"},
      {"R", "N", "samples per node, sampled mode (default 100)"},
      {"seed", "N", "walk seed, sampled mode (default 42)"},
      {"mode", "exact|sampled", "O(mL) DP or Monte-Carlo estimate "
                                "(default exact)"},
  });
  def.batchable = true;
  def.handler = RunKnn;
  return def;
}

}  // namespace rwdom
