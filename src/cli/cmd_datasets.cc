// `rwdom datasets`: lists the paper's Table-2 datasets.
#include "cli/command_registry.h"
#include "harness/dataset_registry.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace rwdom {
namespace {

Status RunDatasets(const CommandEnv& env) {
  if (env.format == OutputFormat::kJson) {
    JsonWriter json;
    json.BeginObject();
    json.Key("command").String("datasets");
    json.Key("datasets").BeginArray();
    for (const DatasetSpec& spec : PaperDatasets()) {
      json.BeginObject();
      json.Key("name").String(spec.name);
      json.Key("nodes").Int(spec.nodes);
      json.Key("edges").Int(spec.edges);
      json.EndObject();
    }
    json.EndArray();
    json.Key("variants").String(
        "append -w (weighted) or -wd (weighted directed) to any name");
    json.EndObject();
    env.out << json.ToString() << "\n";
    return Status::OK();
  }
  TablePrinter table({"name", "nodes", "edges"});
  for (const DatasetSpec& spec : PaperDatasets()) {
    table.AddRow({spec.name, FormatWithCommas(spec.nodes),
                  FormatWithCommas(spec.edges)});
  }
  env.out << table.ToString();
  env.out << "variants: append -w (weighted) or -wd (weighted directed) to "
             "any\nname for a deterministic weighted stand-in on the same "
             "topology.\n";
  return Status::OK();
}

}  // namespace

CommandDef MakeDatasetsCommand() {
  CommandDef def;
  def.name = "datasets";
  def.summary = "list the paper's Table-2 datasets (+ -w/-wd variants)";
  def.usage = "rwdom datasets";
  def.handler = RunDatasets;
  return def;
}

}  // namespace rwdom
