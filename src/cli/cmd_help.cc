// `rwdom help [COMMAND]`: the global blurb, or one command's flag spec
// straight from the registry.
#include "cli/command_registry.h"
#include "util/json.h"

namespace rwdom {
namespace {

void AppendCommandJson(const CommandDef& command, JsonWriter& json) {
  json.BeginObject();
  json.Key("name").String(command.name);
  json.Key("summary").String(command.summary);
  json.Key("usage").String(command.usage);
  json.Key("batchable").Bool(command.batchable);
  json.Key("flags").BeginArray();
  for (const FlagDef& flag : command.flags) {
    json.BeginObject();
    json.Key("name").String(flag.name);
    json.Key("value").String(flag.value_hint);
    json.Key("help").String(flag.help);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

Status RunHelp(const CommandEnv& env) {
  const CommandDef* requested = nullptr;
  if (!env.invocation.positionals.empty()) {
    const std::string& name = env.invocation.positionals.front();
    requested = FindCommand(name);
    if (requested == nullptr) {
      return Status::NotFound("unknown command: " + name +
                              SuggestCommand(name));
    }
  }
  if (env.format == OutputFormat::kJson) {
    JsonWriter json;
    json.BeginObject();
    json.Key("command").String("help");
    json.Key("commands").BeginArray();
    if (requested != nullptr) {
      AppendCommandJson(*requested, json);
    } else {
      for (const CommandDef& command : Commands()) {
        AppendCommandJson(command, json);
      }
    }
    json.EndArray();
    json.EndObject();
    env.out << json.ToString() << "\n";
    return Status::OK();
  }
  if (requested != nullptr) {
    env.out << CommandHelp(*requested);
  } else {
    env.out << CliUsage();
  }
  return Status::OK();
}

}  // namespace

CommandDef MakeHelpCommand() {
  CommandDef def;
  def.name = "help";
  def.summary = "this text (or: rwdom help COMMAND for one flag spec)";
  def.usage = "rwdom help [COMMAND]";
  def.max_positionals = 1;
  def.positional_hint = "[COMMAND]";
  def.handler = RunHelp;
  return def;
}

}  // namespace rwdom
