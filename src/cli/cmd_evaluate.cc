// `rwdom evaluate`: score a given seed set with the sampled metrics.
#include <optional>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "service/engine.h"

namespace rwdom {
namespace {

Status RunEvaluate(const CommandEnv& env) {
  std::optional<QueryContext> local;
  RWDOM_ASSIGN_OR_RETURN(QueryContext * context,
                         AcquireContext(env, &local));
  const std::string seeds_text = FlagOr(env.invocation, "seeds", "");
  if (seeds_text.empty()) {
    return Status::InvalidArgument("--seeds=a,b,c is required");
  }
  EvaluateRequest request;
  RWDOM_ASSIGN_OR_RETURN(
      request.seeds,
      ParseSeedList(seeds_text, context->substrate().num_nodes()));
  // Parsed directly rather than via ResolveSelectorParams: here --R is
  // the metric sample count with the paper's default of 500, not the
  // selector-side replicate count (default 100).
  RWDOM_ASSIGN_OR_RETURN(int64_t length, IntFlagOr(env.invocation, "L", 6));
  RWDOM_ASSIGN_OR_RETURN(request.length, CheckedInt32Flag("L", length, 0));
  RWDOM_ASSIGN_OR_RETURN(int64_t metric_r,
                         IntFlagOr(env.invocation, "R", 500));
  RWDOM_ASSIGN_OR_RETURN(request.num_samples,
                         CheckedInt32Flag("R", metric_r, 1));
  RWDOM_ASSIGN_OR_RETURN(int64_t seed,
                         IntFlagOr(env.invocation, "seed", 42));
  request.seed = static_cast<uint64_t>(seed);

  RWDOM_ASSIGN_OR_RETURN(EvaluateResponse response,
                         Evaluate(*context, request));
  Render(ServiceResponse(std::move(response)), env.format, env.out);
  return Status::OK();
}

}  // namespace

CommandDef MakeEvaluateCommand() {
  CommandDef def;
  def.name = "evaluate";
  def.summary = "score a seed set with the paper's sampled metrics";
  def.usage =
      "rwdom evaluate (--graph=FILE | --dataset=NAME) --seeds=1,2,3 "
      "[--L=6 --R=500 --seed=42]";
  def.flags = WithSubstrateFlags({
      {"seeds", "a,b,c", "comma-separated node ids to score"},
      {"L", "N", "walk budget (default 6)"},
      {"R", "N", "metric samples per node (default 500)"},
      {"seed", "N", "metric walk seed (default 42)"},
  });
  def.batchable = true;
  def.handler = RunEvaluate;
  return def;
}

}  // namespace rwdom
