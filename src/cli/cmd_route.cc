// `rwdom route`: the consistent-hash fleet front over `rwdom serve`
// backends. Speaks the exact JSONL protocol the backends do; each
// request line is placed on a hash ring by its `"graph"` member
// (omitted = the default graph) and forwarded byte-for-byte, so
// routed responses are the backend's own bytes. Admin requests
// (`server_stats`, `shutdown`) scatter to every backend and gather
// into one merged {"router": ...} response; `shutdown` also stops the
// router. SIGINT/SIGTERM shut down gracefully.
#include <csignal>

#include <atomic>
#include <fstream>
#include <string>
#include <vector>

#include "cli/command_registry.h"
#include "cli/flag_parsing.h"
#include "server/protocol.h"
#include "server/router.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace rwdom {
namespace {

// Same async-signal-safe wiring as `rwdom serve`: the handler only
// pokes the router's wake pipe.
std::atomic<QueryRouter*> g_signal_router{nullptr};

void HandleShutdownSignal(int /*signo*/) {
  QueryRouter* router = g_signal_router.load();
  if (router != nullptr) router->NotifyShutdown();
}

class ScopedShutdownSignals {
 public:
  explicit ScopedShutdownSignals(QueryRouter* router) {
    g_signal_router.store(router);
    struct sigaction action = {};
    action.sa_handler = HandleShutdownSignal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, &previous_int_);
    sigaction(SIGTERM, &action, &previous_term_);
  }
  ~ScopedShutdownSignals() {
    sigaction(SIGINT, &previous_int_, nullptr);
    sigaction(SIGTERM, &previous_term_, nullptr);
    g_signal_router.store(nullptr);
  }

 private:
  struct sigaction previous_int_ = {};
  struct sigaction previous_term_ = {};
};

Status RunRoute(const CommandEnv& env) {
  const std::vector<std::string> backends =
      RepeatedFlagValues(env.invocation, "backend");
  if (backends.empty()) {
    return Status::InvalidArgument(
        "route needs at least one --backend=HOST:PORT");
  }
  for (const std::string& backend : backends) {
    const size_t colon = backend.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == backend.size()) {
      return Status::InvalidArgument("--backend wants HOST:PORT, got: " +
                                     backend);
    }
  }

  RouterOptions options;
  RWDOM_ASSIGN_OR_RETURN(int64_t port,
                         IntFlagOr(env.invocation, "port", 7118));
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("--port must be in [0, 65535]");
  }
  options.port = static_cast<int>(port);
  options.host = FlagOr(env.invocation, "bind", "127.0.0.1");
  RWDOM_ASSIGN_OR_RETURN(int64_t max_connections,
                         IntFlagOr(env.invocation, "max_connections", 64));
  if (max_connections < 1 || max_connections > 65536) {
    return Status::InvalidArgument(
        "--max_connections must be in [1, 65536]");
  }
  options.max_connections = static_cast<int>(max_connections);
  options.threads = NumThreads();
  RWDOM_ASSIGN_OR_RETURN(int64_t retry_after_ms,
                         IntFlagOr(env.invocation, "retry_after_ms", 250));
  if (retry_after_ms < 0) {
    return Status::InvalidArgument("--retry_after_ms must be >= 0");
  }
  options.retry_after_ms = static_cast<int>(retry_after_ms);
  RWDOM_ASSIGN_OR_RETURN(
      int64_t write_timeout_ms,
      IntFlagOr(env.invocation, "write_timeout_ms", 30'000));
  if (write_timeout_ms < 0) {
    return Status::InvalidArgument("--write_timeout_ms must be >= 0");
  }
  options.write_timeout_ms = static_cast<int>(write_timeout_ms);
  RWDOM_ASSIGN_OR_RETURN(
      int64_t max_request_bytes,
      IntFlagOr(env.invocation, "max_request_bytes",
                static_cast<int64_t>(LineReader::kDefaultMaxLineBytes)));
  if (max_request_bytes < 64) {
    return Status::InvalidArgument("--max_request_bytes must be >= 64");
  }
  options.max_request_bytes = static_cast<size_t>(max_request_bytes);
  const std::string port_file = FlagOr(env.invocation, "port_file", "");

  QueryRouter router(backends, options);
  ScopedShutdownSignals signals(&router);
  RWDOM_RETURN_IF_ERROR(router.Start());

  if (!port_file.empty()) {
    std::ofstream file(port_file, std::ios::trunc);
    if (!file) {
      router.Shutdown();
      return Status::IoError("cannot write --port_file: " + port_file);
    }
    file << router.port() << "\n";
  }

  std::string backend_list;
  for (const std::string& backend : backends) {
    if (!backend_list.empty()) backend_list += ", ";
    backend_list += backend;
  }
  env.out << StrFormat(
      "routing on %s:%d over %d backend(s): %s (threads=%d, "
      "max_connections=%d, protocol_version=%d)\n",
      options.host.c_str(), router.port(),
      static_cast<int>(backends.size()), backend_list.c_str(),
      options.threads, options.max_connections, kProtocolVersion);
  env.out << "placement: consistent hash on the request's \"graph\" "
             "member; admin requests fan out to every backend\n";
  env.out.flush();

  router.Wait();

  const RouterStats stats = router.stats();
  env.out << StrFormat(
      "route: %lld request(s) proxied (errors=%lld, failovers=%lld, "
      "admin fanouts=%lld) over %lld connection(s)\n",
      static_cast<long long>(stats.requests_proxied),
      static_cast<long long>(stats.requests_error),
      static_cast<long long>(stats.failovers),
      static_cast<long long>(stats.admin_fanouts),
      static_cast<long long>(stats.connections_accepted));
  return Status::OK();
}

}  // namespace

CommandDef MakeRouteCommand() {
  CommandDef def;
  def.name = "route";
  def.summary = "front a fleet of serve backends with consistent hashing";
  def.usage =
      "rwdom route --backend=HOST:PORT [--backend=HOST:PORT ...] "
      "[--port=7118] [--max_connections=64]\n       same JSONL protocol "
      "as `rwdom serve`; each line's \"graph\" member picks its backend "
      "on a fixed hash ring\n       (unreachable backends are skipped to "
      "the next ring position; a backend lost mid-request answers "
      "Unavailable + retry_after_ms)";
  def.flags = {
      {"backend", "HOST:PORT",
       "one serve backend; repeat for the whole fleet (ring order is "
       "hash-determined, not flag order)"},
      {"port", "N", "TCP port to listen on; 0 picks an ephemeral port "
                    "(default 7118)"},
      {"bind", "ADDR", "bind address (default 127.0.0.1; use 0.0.0.0 to "
                       "expose beyond localhost)"},
      {"max_connections", "N",
       "open-connection cap; excess connections are refused (default 64)"},
      {"retry_after_ms", "N",
       "backoff hint carried in Unavailable responses (default 250)"},
      {"write_timeout_ms", "N",
       "drop a connection whose client stops reading responses for this "
       "long (default 30000; 0 = unlimited)"},
      {"max_request_bytes", "N",
       "per-request-line byte cap; overlong lines answer InvalidArgument "
       "(default 1048576)"},
      {"port_file", "FILE", "write the bound port here once listening "
                            "(handshake for scripts/tests)"},
  };
  def.handler = RunRoute;
  return def;
}

}  // namespace rwdom
