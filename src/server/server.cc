#include "server/server.h"

#include <utility>

#include "util/json.h"
#include "util/logging.h"
#include "util/strings.h"

namespace rwdom {
namespace {

std::string ErrorLine(std::string_view code, const std::string& message) {
  JsonWriter json;
  json.BeginObject();
  json.Key("error").BeginObject();
  json.Key("code").String(std::string(code));
  json.Key("message").String(message);
  json.EndObject();
  json.EndObject();
  return json.ToString();
}

}  // namespace

QueryServer::QueryServer(QueryContext* context, LineExecutor executor,
                         ServerOptions options)
    : context_(context),
      executor_(std::move(executor)),
      options_(std::move(options)) {
  RWDOM_CHECK(context_ != nullptr);
  RWDOM_CHECK(executor_ != nullptr);
  RWDOM_CHECK(options_.threads >= 1);
  RWDOM_CHECK(options_.max_connections >= 1);
  {
    JsonWriter json;
    json.BeginObject();
    json.Key("rwdom").BeginObject();
    json.Key("protocol_version").Int(kProtocolVersion);
    json.Key("capabilities").BeginArray();
    for (const std::string& capability : options_.capabilities) {
      json.String(capability);
    }
    json.EndArray();
    json.EndObject();
    json.EndObject();
    greeting_line_ = json.ToString();
  }
  // Created here, not in Start(), so NotifyShutdown — and a SIGINT
  // handler routed through it — works from construction on; a poke that
  // lands before Start() shuts the server down on its first accept.
  auto wake = MakeWakePipe();
  RWDOM_CHECK(wake.ok()) << wake.status();
  wake_ = std::move(*wake);
}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    RWDOM_CHECK(!started_) << "QueryServer::Start called twice";
    started_ = true;
  }
  RWDOM_ASSIGN_OR_RETURN(
      listener_,
      TcpListen(options_.host, options_.port,
                /*backlog=*/options_.max_connections));
  RWDOM_ASSIGN_OR_RETURN(port_, LocalPort(listener_.get()));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void QueryServer::NotifyShutdown() {
  // Only an async-signal-safe write: the accept thread turns the poke
  // into the actual state change.
  if (wake_.write_end.valid()) PokeWakePipe(wake_.write_end.get());
}

void QueryServer::BeginShutdown() {
  if (stopping_.exchange(true)) return;
  // Wake the accept loop (idempotent) and every idle worker.
  if (wake_.write_end.valid()) PokeWakePipe(wake_.write_end.get());
  {
    // Empty critical section: a worker that read stopping_=false in its
    // wait predicate still holds queue_mutex_ until it blocks, so
    // acquiring it here orders this notify after that worker is
    // actually waiting — without it the notify can fire in the window
    // between predicate evaluation and blocking and be lost for good.
    std::lock_guard<std::mutex> lock(queue_mutex_);
  }
  queue_cv_.notify_all();
}

void QueryServer::AcceptLoop() {
  for (;;) {
    if (stopping_.load()) break;
    auto accepted = AcceptWithWake(listener_.get(), wake_.read_end.get());
    if (!accepted.ok()) {
      RWDOM_LOG(WARNING) << "rwdom serve: accept failed, shutting down: "
                         << accepted.status();
      break;
    }
    if (!accepted->has_value()) break;  // Woken: shutdown requested.
    UniqueFd connection = std::move(**accepted);
    connections_accepted_.fetch_add(1);
    // Every accepted connection gets the greeting first — including one
    // about to be refused — so a client can unconditionally consume
    // exactly one greeting line before its first response (a refusal
    // then arrives as the first "response").
    (void)SendAll(connection.get(), greeting_line_ + "\n");
    if (active_connections_.load() >= options_.max_connections) {
      connections_rejected_.fetch_add(1);
      // Best-effort refusal line; the close is the real signal.
      (void)SendAll(connection.get(),
                    ErrorLine("Unavailable",
                              StrFormat("server at --max_connections=%d",
                                        options_.max_connections)) +
                        "\n");
      continue;
    }
    active_connections_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      pending_.push_back(std::move(connection));
    }
    queue_cv_.notify_one();
  }
  BeginShutdown();
  // Close the listening socket now (only this thread uses it), so the
  // port refuses new connections as soon as shutdown begins rather than
  // when the server object is destroyed.
  listener_.reset();
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void QueryServer::WorkerLoop() {
  for (;;) {
    UniqueFd connection;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !pending_.empty();
      });
      if (pending_.empty()) return;  // Stopping and drained.
      connection = std::move(pending_.front());
      pending_.pop_front();
      if (stopping_.load()) {
        // Queued but never served: close without a response.
        active_connections_.fetch_sub(1);
        continue;
      }
    }
    ServeConnection(std::move(connection));
    active_connections_.fetch_sub(1);
  }
}

void QueryServer::ServeConnection(UniqueFd connection) {
  LineReader reader(connection.get());
  std::string line;
  const auto cancelled = [this] { return stopping_.load(); };
  for (;;) {
    auto outcome = reader.ReadLine(&line, cancelled, /*poll_interval_ms=*/50);
    if (!outcome.ok() || *outcome != LineReader::Outcome::kLine) break;
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::string response = HandleLine(std::string(trimmed));
    // The in-flight request's response is sent even mid-shutdown; only
    // *further* requests on this connection are cut off.
    if (!SendAll(connection.get(), response + "\n").ok()) break;
    if (stopping_.load()) break;
  }
}

std::string QueryServer::HandleLine(const std::string& line) {
  // Peek at the command for the two admin requests the server answers
  // itself; anything else (including unparseable lines) goes through the
  // injected executor so errors read exactly like batch-script errors.
  auto parsed = ParseJson(line);
  if (parsed.ok() && parsed->is_object()) {
    const JsonValue* command = parsed->Find("command");
    if (command != nullptr && command->is_string()) {
      if (command->string_value() == "shutdown") {
        queries_ok_.fetch_add(1);
        BeginShutdown();
        JsonWriter json;
        json.BeginObject();
        json.Key("ok").Bool(true);
        json.Key("shutting_down").Bool(true);
        json.EndObject();
        return json.ToString();
      }
      if (command->string_value() == "server_stats") {
        queries_ok_.fetch_add(1);
        return StatsResponseLine();
      }
    }
  }
  std::string response;
  Status status = executor_(line, &response);
  if (!status.ok()) {
    queries_error_.fetch_add(1);
    return ErrorLine(StatusCodeToString(status.code()), status.message());
  }
  queries_ok_.fetch_add(1);
  return response;
}

ServerStats QueryServer::stats() const {
  ServerStats stats;
  stats.connections_accepted = connections_accepted_.load();
  stats.connections_rejected = connections_rejected_.load();
  stats.active_connections = active_connections_.load();
  stats.queries_ok = queries_ok_.load();
  stats.queries_error = queries_error_.load();
  stats.index_builds = context_->index_builds();
  stats.index_hits = context_->index_hits();
  stats.index_recovered = context_->index_recovered();
  stats.cached_bytes = context_->TotalMemoryBytes();
  stats.persistence = context_->persistence();
  return stats;
}

std::string QueryServer::StatsResponseLine() const {
  const ServerStats stats = this->stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("server_stats").BeginObject();
  json.Key("protocol_version").Int(kProtocolVersion);
  json.Key("capabilities").BeginArray();
  for (const std::string& capability : options_.capabilities) {
    json.String(capability);
  }
  json.EndArray();
  json.Key("substrate").String(context_->substrate().kind());
  json.Key("substrate_fingerprint")
      .String(StrFormat("%016llx", static_cast<unsigned long long>(
                                       context_->substrate_fingerprint())));
  json.Key("threads").Int(options_.threads);
  json.Key("max_connections").Int(options_.max_connections);
  json.Key("graph_loads").Int(stats.graph_loads);
  json.Key("index_builds").Int(stats.index_builds);
  json.Key("index_hits").Int(stats.index_hits);
  json.Key("index_recovered").Int(stats.index_recovered);
  json.Key("cached_bytes").Int(stats.cached_bytes);
  json.Key("cache_dir").String(stats.persistence.cache_dir);
  json.Key("snapshots_recovered").Int(stats.persistence.snapshots_recovered);
  json.Key("snapshots_rejected").Int(stats.persistence.snapshots_rejected);
  json.Key("checkpoints_written").Int(stats.persistence.checkpoints_written);
  json.Key("snapshot_rejections").BeginArray();
  for (const std::string& reason : stats.persistence.rejections) {
    json.String(reason);
  }
  json.EndArray();
  json.Key("queries_ok").Int(stats.queries_ok);
  json.Key("queries_error").Int(stats.queries_error);
  json.Key("connections_accepted").Int(stats.connections_accepted);
  json.Key("connections_rejected").Int(stats.connections_rejected);
  json.Key("active_connections").Int(stats.active_connections);
  json.EndObject();
  json.EndObject();
  return json.ToString();
}

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!started_) return;
  }
  BeginShutdown();
  Join();
}

void QueryServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(lifecycle_mutex_);
    if (!started_) return;
    stopped_cv_.wait(lock, [this] { return stopped_; });
  }
  Join();
}

void QueryServer::Join() {
  // join_mutex_ is never taken by server threads, so holding it across
  // the joins cannot deadlock (lifecycle_mutex_ is taken by the accept
  // thread right before it exits); concurrent Join callers serialize
  // and all return only after every thread finished.
  std::lock_guard<std::mutex> lock(join_mutex_);
  if (joined_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Same lost-wakeup bracket as BeginShutdown (see there).
    std::lock_guard<std::mutex> queue_lock(queue_mutex_);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Connections still queued were closed by their UniqueFd destructors
  // as workers drained; the listener closes with the server.
  joined_ = true;
}

}  // namespace rwdom
