#include "server/server.h"

#include <tuple>
#include <utility>

#include "util/json.h"
#include "util/logging.h"
#include "util/strings.h"

namespace rwdom {

QueryServer::QueryServer(GraphRegistry* registry, LineExecutor executor,
                         ServerOptions options)
    : registry_(registry),
      executor_(std::move(executor)),
      options_(std::move(options)) {
  RWDOM_CHECK(registry_ != nullptr);
  RWDOM_CHECK(registry_->default_context() != nullptr)
      << "QueryServer needs a default graph";
  RWDOM_CHECK(executor_ != nullptr);
  RWDOM_CHECK(options_.threads >= 1);
  RWDOM_CHECK(options_.max_connections >= 1);
  for (const std::string& name : registry_->GraphNames()) {
    graph_requests_.emplace(std::piecewise_construct,
                            std::forward_as_tuple(name),
                            std::forward_as_tuple(0));
  }
  {
    JsonWriter json;
    json.BeginObject();
    json.Key("rwdom").BeginObject();
    json.Key("protocol_version").Int(kProtocolVersion);
    json.Key("capabilities").BeginArray();
    for (const std::string& capability : options_.capabilities) {
      json.String(capability);
    }
    json.EndArray();
    json.EndObject();
    json.EndObject();
    greeting_line_ = json.ToString();
  }
  // Created here, not in Start(), so NotifyShutdown — and a SIGINT
  // handler routed through it — works from construction on; a poke that
  // lands before Start() shuts the server down on its first accept.
  auto wake = MakeWakePipe();
  RWDOM_CHECK(wake.ok()) << wake.status();
  wake_ = std::move(*wake);
}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    RWDOM_CHECK(!started_) << "QueryServer::Start called twice";
    started_ = true;
  }
  RWDOM_ASSIGN_OR_RETURN(
      listener_,
      TcpListen(options_.host, options_.port,
                /*backlog=*/options_.max_connections));
  RWDOM_ASSIGN_OR_RETURN(port_, LocalPort(listener_.get()));
  // The serving core starts before the accept thread so an adopted
  // connection always has a live shard/pool behind it.
  if (options_.io == IoMode::kEpoll) {
    EventLoopConfig config;
    config.write_timeout_ms = options_.write_timeout_ms;
    config.max_request_bytes = options_.max_request_bytes;
    config.write_buffer_bytes = options_.write_buffer_bytes;
    EventLoopHooks hooks;
    hooks.handle_line = [this](const std::string& line) {
      // Same clock-read cadence as the threaded path: the deadline
      // starts when the line is dispatched, which under the event loop
      // is also when its bytes arrived.
      const Deadline deadline =
          options_.request_timeout_ms > 0
              ? Deadline::AfterMillis(clock(), options_.request_timeout_ms)
              : Deadline::Infinite();
      return HandleLine(line, deadline);
    };
    hooks.oversized_response = [this] {
      oversized_requests_.fetch_add(1);
      queries_error_.fetch_add(1);
      return ErrorResponseLine(
          "InvalidArgument",
          StrFormat("request line exceeds --max_request_bytes=%zu",
                    options_.max_request_bytes));
    };
    hooks.on_write_timeout = [this] { write_timeouts_.fetch_add(1); };
    hooks.on_backpressure_pause = [this] {
      backpressure_pauses_.fetch_add(1);
    };
    hooks.on_connection_closed = [this] {
      active_connections_.fetch_sub(1);
    };
    shards_.reserve(static_cast<size_t>(options_.threads));
    for (int i = 0; i < options_.threads; ++i) {
      shards_.push_back(std::make_unique<EventLoopShard>(config, hooks));
      RWDOM_RETURN_IF_ERROR(shards_.back()->Start());
    }
  } else {
    workers_.reserve(static_cast<size_t>(options_.threads));
    for (int i = 0; i < options_.threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::NotifyShutdown() {
  // Only an async-signal-safe write: the accept thread turns the poke
  // into the actual state change.
  if (wake_.write_end.valid()) PokeWakePipe(wake_.write_end.get());
}

void QueryServer::BeginShutdown() {
  if (stopping_.exchange(true)) return;
  // Wake the accept loop (idempotent) and every idle worker.
  if (wake_.write_end.valid()) PokeWakePipe(wake_.write_end.get());
  // Non-blocking, so safe even when a shard's own dispatch (the
  // `shutdown` admin request) is what got us here.
  for (auto& shard : shards_) shard->Stop();
  {
    // Empty critical section: a worker that read stopping_=false in its
    // wait predicate still holds queue_mutex_ until it blocks, so
    // acquiring it here orders this notify after that worker is
    // actually waiting — without it the notify can fire in the window
    // between predicate evaluation and blocking and be lost for good.
    std::lock_guard<std::mutex> lock(queue_mutex_);
  }
  queue_cv_.notify_all();
}

void QueryServer::AcceptLoop() {
  for (;;) {
    if (stopping_.load()) break;
    auto accepted = AcceptWithWake(listener_.get(), wake_.read_end.get());
    if (!accepted.ok()) {
      RWDOM_LOG(WARNING) << "rwdom serve: accept failed, shutting down: "
                         << accepted.status();
      break;
    }
    if (!accepted->has_value()) break;  // Woken: shutdown requested.
    UniqueFd connection = std::move(**accepted);
    connections_accepted_.fetch_add(1);
    // Every accepted connection gets the greeting first — including one
    // about to be refused — so a client can unconditionally consume
    // exactly one greeting line before its first response (a refusal
    // then arrives as the first "response").
    if (!SendAll(connection.get(), greeting_line_ + "\n").ok()) {
      // A connection we cannot even greet is dropped: the close reaches
      // the client more reliably than any further byte would, and the
      // greeting contract ("exactly one line before the first response")
      // stays intact for everyone else.
      continue;
    }
    if (active_connections_.load() >= options_.max_connections) {
      connections_rejected_.fetch_add(1);
      // Best-effort refusal line; the close is the real signal.
      (void)SendAll(connection.get(),
                    ErrorResponseLine("Unavailable",
                              StrFormat("server at --max_connections=%d",
                                        options_.max_connections),
                              options_.retry_after_ms) +
                        "\n");
      continue;
    }
    if (options_.io == IoMode::kEpoll) {
      // Shed-on-overflow, epoll spelling: with `threads` shards there
      // is no pending queue, but the equivalent backlog bound is open
      // connections beyond what `threads` workers plus a queue of
      // max_queue_depth would have admitted — the same threshold the
      // threaded path enforces at saturation.
      if (options_.max_queue_depth > 0 &&
          active_connections_.load() >=
              options_.threads + options_.max_queue_depth) {
        requests_shed_.fetch_add(1);
        (void)SendAll(connection.get(),
                      ErrorResponseLine("Unavailable",
                                StrFormat("server overloaded (queue depth %d)",
                                          options_.max_queue_depth),
                                options_.retry_after_ms) +
                          "\n");
        continue;
      }
      active_connections_.fetch_add(1);
      shards_[next_shard_++ % shards_.size()]->Adopt(std::move(connection));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      // Shed-on-overflow: a queue deeper than the cap means every worker
      // is busy and the backlog is growing — refusing *now* with a
      // backoff hint beats accepting work that will time out anyway.
      if (options_.max_queue_depth > 0 &&
          static_cast<int>(pending_.size()) >= options_.max_queue_depth) {
        requests_shed_.fetch_add(1);
        // `connection` stays valid; the shed reply happens off-lock.
      } else {
        active_connections_.fetch_add(1);
        pending_.push_back(std::move(connection));
        connection = UniqueFd();
      }
    }
    if (connection.valid()) {
      (void)SendAll(connection.get(),
                    ErrorResponseLine("Unavailable",
                              StrFormat("server overloaded (queue depth %d)",
                                        options_.max_queue_depth),
                              options_.retry_after_ms) +
                        "\n");
      continue;
    }
    queue_cv_.notify_one();
  }
  BeginShutdown();
  // Close the listening socket now (only this thread uses it), so the
  // port refuses new connections as soon as shutdown begins rather than
  // when the server object is destroyed.
  listener_.reset();
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void QueryServer::WorkerLoop() {
  for (;;) {
    UniqueFd connection;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !pending_.empty();
      });
      if (pending_.empty()) return;  // Stopping and drained.
      connection = std::move(pending_.front());
      pending_.pop_front();
      if (stopping_.load()) {
        // Queued but never served: close without a response.
        active_connections_.fetch_sub(1);
        continue;
      }
    }
    ServeConnection(std::move(connection));
    active_connections_.fetch_sub(1);
  }
}

void QueryServer::ServeConnection(UniqueFd connection) {
  LineReader reader(connection.get(), options_.max_request_bytes);
  std::string line;
  const auto cancelled = [this] { return stopping_.load(); };
  for (;;) {
    auto outcome = reader.ReadLine(&line, cancelled, /*poll_interval_ms=*/50);
    if (!outcome.ok()) break;
    std::string response;
    if (*outcome == LineReader::Outcome::kOverflow) {
      // The reader already resynced at the next newline; answer the
      // oversized request with a typed error and keep serving.
      oversized_requests_.fetch_add(1);
      response = ErrorResponseLine(
          "InvalidArgument",
          StrFormat("request line exceeds --max_request_bytes=%zu",
                    options_.max_request_bytes));
      queries_error_.fetch_add(1);
    } else if (*outcome != LineReader::Outcome::kLine) {
      break;
    } else {
      std::string_view trimmed = StripWhitespace(line);
      if (trimmed.empty() || trimmed.front() == '#') continue;
      // The request's clock starts when its line arrives, not when a
      // worker gets to it — queueing time counts against the budget.
      const Deadline deadline =
          options_.request_timeout_ms > 0
              ? Deadline::AfterMillis(clock(), options_.request_timeout_ms)
              : Deadline::Infinite();
      response = HandleLine(std::string(trimmed), deadline);
    }
    // The in-flight request's response is sent even mid-shutdown; only
    // *further* requests on this connection are cut off.
    const Status sent = SendAllWithin(connection.get(), response + "\n",
                                      options_.write_timeout_ms);
    if (!sent.ok()) {
      if (sent.code() == StatusCode::kDeadlineExceeded) {
        // A peer that stopped draining its socket does not get to pin
        // this worker; drop the connection and move on.
        write_timeouts_.fetch_add(1);
        RWDOM_LOG(WARNING) << "rwdom serve: dropped stalled client: "
                           << sent.message();
      }
      break;
    }
    if (stopping_.load()) break;
  }
}

std::string QueryServer::HandleLine(const std::string& line,
                                    const Deadline& deadline) {
  // One strict parse of the protocol-v3 envelope up front: malformed
  // lines and unknown members are rejected here with the exact wording
  // batch scripts print, before any dispatch work.
  auto parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    queries_error_.fetch_add(1);
    return ErrorResponseLine(StatusCodeToString(parsed.status().code()),
                             parsed.status().message());
  }
  // The two admin requests the server answers itself.
  if (parsed->command == "shutdown") {
    if (!parsed->flags.empty() || !parsed->graph.empty()) {
      queries_error_.fetch_add(1);
      return ErrorResponseLine(
          "InvalidArgument",
          "shutdown is fleet-wide and takes no \"flags\" or \"graph\"");
    }
    queries_ok_.fetch_add(1);
    BeginShutdown();
    JsonWriter json;
    json.BeginObject();
    json.Key("ok").Bool(true);
    json.Key("shutting_down").Bool(true);
    json.EndObject();
    return json.ToString();
  }
  if (parsed->command == "server_stats") {
    if (!parsed->flags.empty()) {
      queries_error_.fetch_add(1);
      return ErrorResponseLine(
          "InvalidArgument",
          "server_stats takes no \"flags\" (use \"graph\" to filter)");
    }
    const std::string* filter = nullptr;
    if (!parsed->graph.empty()) {
      auto resolved = registry_->Resolve(parsed->graph);
      if (!resolved.ok()) {
        queries_error_.fetch_add(1);
        return ErrorResponseLine(StatusCodeToString(resolved.status().code()),
                                 resolved.status().message());
      }
      filter = resolved->name;
    }
    queries_ok_.fetch_add(1);
    return StatsResponseLine(filter);
  }
  // Dispatch boundary 1: a request that waited out its whole budget in
  // the queue is answered without doing the work it is too late for.
  if (deadline.Expired(clock())) {
    deadline_exceeded_.fetch_add(1);
    queries_error_.fetch_add(1);
    return ErrorResponseLine(
        "DeadlineExceeded",
        StrFormat("request exceeded --request_timeout_ms=%d before dispatch",
                  options_.request_timeout_ms));
  }
  auto resolved = registry_->Resolve(parsed->graph);
  if (!resolved.ok()) {
    queries_error_.fetch_add(1);
    return ErrorResponseLine(StatusCodeToString(resolved.status().code()),
                             resolved.status().message());
  }
  graph_requests_.find(*resolved->name)->second.fetch_add(1);
  std::string response;
  Status status = executor_(*parsed, *resolved->context, &response);
  // Dispatch boundary 2: the work ran long. The answer is correct but
  // contractually late — the client asked for a bounded wait, so late
  // is an error (and the index the work warmed stays cached, so a retry
  // without the deadline pressure is cheap).
  if (status.ok() && deadline.Expired(clock())) {
    deadline_exceeded_.fetch_add(1);
    queries_error_.fetch_add(1);
    return ErrorResponseLine(
        "DeadlineExceeded",
        StrFormat("request exceeded --request_timeout_ms=%d during execution",
                  options_.request_timeout_ms));
  }
  if (!status.ok()) {
    queries_error_.fetch_add(1);
    return ErrorResponseLine(StatusCodeToString(status.code()), status.message());
  }
  queries_ok_.fetch_add(1);
  return response;
}

ServerStats QueryServer::stats() const {
  ServerStats stats;
  stats.connections_accepted = connections_accepted_.load();
  stats.connections_rejected = connections_rejected_.load();
  stats.active_connections = active_connections_.load();
  stats.queries_ok = queries_ok_.load();
  stats.queries_error = queries_error_.load();
  stats.requests_shed = requests_shed_.load();
  stats.deadline_exceeded = deadline_exceeded_.load();
  stats.oversized_requests = oversized_requests_.load();
  stats.write_timeouts = write_timeouts_.load();
  stats.backpressure_pauses = backpressure_pauses_.load();
  stats.graph_loads = static_cast<int64_t>(registry_->size());
  stats.graphs.reserve(registry_->size());
  for (const ResolvedGraph& graph : registry_->Graphs()) {
    GraphServeStats slice;
    slice.name = *graph.name;
    slice.substrate = graph.context->substrate().kind();
    slice.substrate_fingerprint = graph.context->substrate_fingerprint();
    slice.index_hits = graph.context->index_hits();
    slice.index_builds = graph.context->index_builds();
    slice.index_evictions = graph.context->index_evictions();
    slice.admission_rejections = graph.context->admission_rejections();
    auto requests = graph_requests_.find(*graph.name);
    slice.requests =
        requests != graph_requests_.end() ? requests->second.load() : 0;
    stats.index_builds += slice.index_builds;
    stats.index_hits += slice.index_hits;
    stats.index_recovered += graph.context->index_recovered();
    stats.index_evictions += slice.index_evictions;
    stats.admission_rejections += slice.admission_rejections;
    stats.cached_bytes += graph.context->TotalMemoryBytes();
    for (const auto& [key, index] : graph.context->CachedIndexes()) {
      slice.cached_index_bytes += index->MemoryUsageBytes();
      stats.cached_index_raw_bytes += index->UncompressedBytes();
    }
    stats.cached_index_bytes += slice.cached_index_bytes;
    const PersistenceInfo persistence = graph.context->persistence();
    stats.persistence.snapshots_recovered += persistence.snapshots_recovered;
    stats.persistence.snapshots_rejected += persistence.snapshots_rejected;
    stats.persistence.checkpoints_written += persistence.checkpoints_written;
    stats.persistence.checkpoint_failures += persistence.checkpoint_failures;
    for (const std::string& reason : persistence.rejections) {
      stats.persistence.rejections.push_back(reason);
    }
    stats.graphs.push_back(std::move(slice));
  }
  stats.persistence.cache_dir =
      registry_->default_context()->persistence().cache_dir;
  // Health latch: "degraded" while the degradation counters are moving,
  // back to "ok" after one quiet interval. Reading advances the latch.
  const int64_t degradation_sum =
      stats.requests_shed + stats.deadline_exceeded +
      stats.oversized_requests + stats.write_timeouts +
      stats.index_evictions + stats.admission_rejections +
      stats.persistence.checkpoint_failures + stats.connections_rejected;
  const int64_t previous = last_degradation_sum_.exchange(degradation_sum);
  stats.health = degradation_sum > previous ? "degraded" : "ok";
  return stats;
}

std::string QueryServer::StatsResponseLine(
    const std::string* graph_filter) const {
  const ServerStats stats = this->stats();
  const QueryContext& default_context = *registry_->default_context();
  JsonWriter json;
  json.BeginObject();
  json.Key("server_stats").BeginObject();
  json.Key("protocol_version").Int(kProtocolVersion);
  json.Key("capabilities").BeginArray();
  for (const std::string& capability : options_.capabilities) {
    json.String(capability);
  }
  json.EndArray();
  // The top-level substrate keys stay the default graph's — exactly the
  // v2 response shape; named tenants appear in the "graphs" section.
  json.Key("substrate").String(default_context.substrate().kind());
  json.Key("substrate_fingerprint")
      .String(StrFormat("%016llx",
                        static_cast<unsigned long long>(
                            default_context.substrate_fingerprint())));
  json.Key("threads").Int(options_.threads);
  json.Key("io").String(IoModeName(options_.io));
  json.Key("max_connections").Int(options_.max_connections);
  json.Key("graph_loads").Int(stats.graph_loads);
  json.Key("index_builds").Int(stats.index_builds);
  json.Key("index_hits").Int(stats.index_hits);
  json.Key("index_recovered").Int(stats.index_recovered);
  json.Key("cached_bytes").Int(stats.cached_bytes);
  json.Key("cached_index_bytes").Int(stats.cached_index_bytes);
  json.Key("cached_index_raw_bytes").Int(stats.cached_index_raw_bytes);
  json.Key("cache_dir").String(stats.persistence.cache_dir);
  json.Key("snapshots_recovered").Int(stats.persistence.snapshots_recovered);
  json.Key("snapshots_rejected").Int(stats.persistence.snapshots_rejected);
  json.Key("checkpoints_written").Int(stats.persistence.checkpoints_written);
  json.Key("checkpoint_failures").Int(stats.persistence.checkpoint_failures);
  json.Key("snapshot_rejections").BeginArray();
  for (const std::string& reason : stats.persistence.rejections) {
    json.String(reason);
  }
  json.EndArray();
  json.Key("queries_ok").Int(stats.queries_ok);
  json.Key("queries_error").Int(stats.queries_error);
  json.Key("connections_accepted").Int(stats.connections_accepted);
  json.Key("connections_rejected").Int(stats.connections_rejected);
  json.Key("active_connections").Int(stats.active_connections);
  json.Key("health").String(stats.health);
  json.Key("requests_shed").Int(stats.requests_shed);
  json.Key("deadline_exceeded").Int(stats.deadline_exceeded);
  json.Key("oversized_requests").Int(stats.oversized_requests);
  json.Key("write_timeouts").Int(stats.write_timeouts);
  json.Key("backpressure_pauses").Int(stats.backpressure_pauses);
  json.Key("index_evictions").Int(stats.index_evictions);
  json.Key("admission_rejections").Int(stats.admission_rejections);
  // The per-graph section appears only for multi-graph servers or an
  // explicit filter, keeping single-graph v2 responses byte-identical.
  if (registry_->multi_graph() || graph_filter != nullptr) {
    json.Key("graphs").BeginObject();
    for (const GraphServeStats& graph : stats.graphs) {
      if (graph_filter != nullptr && graph.name != *graph_filter) continue;
      json.Key(graph.name).BeginObject();
      json.Key("substrate").String(graph.substrate);
      json.Key("substrate_fingerprint")
          .String(StrFormat("%016llx", static_cast<unsigned long long>(
                                           graph.substrate_fingerprint)));
      json.Key("cached_index_bytes").Int(graph.cached_index_bytes);
      json.Key("index_hits").Int(graph.index_hits);
      json.Key("index_builds").Int(graph.index_builds);
      json.Key("index_evictions").Int(graph.index_evictions);
      json.Key("admission_rejections").Int(graph.admission_rejections);
      json.Key("requests").Int(graph.requests);
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.ToString();
}

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!started_) return;
  }
  BeginShutdown();
  Join();
}

void QueryServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(lifecycle_mutex_);
    if (!started_) return;
    stopped_cv_.wait(lock, [this] { return stopped_; });
  }
  Join();
}

void QueryServer::Join() {
  // join_mutex_ is never taken by server threads, so holding it across
  // the joins cannot deadlock (lifecycle_mutex_ is taken by the accept
  // thread right before it exits); concurrent Join callers serialize
  // and all return only after every thread finished.
  std::lock_guard<std::mutex> lock(join_mutex_);
  if (joined_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Same lost-wakeup bracket as BeginShutdown (see there).
    std::lock_guard<std::mutex> queue_lock(queue_mutex_);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  for (auto& shard : shards_) {
    shard->Stop();
    shard->Join();
  }
  // Connections still queued were closed by their UniqueFd destructors
  // as workers/shards drained; the listener closes with the server.
  joined_ = true;
}

}  // namespace rwdom
