// Client side of the JSONL query protocol: connect to a running
// `rwdom serve`, send request lines, read the one response line each
// produces. Used by `rwdom client`, the multi-client smoke tests and
// bench_serve_throughput.
#ifndef RWDOM_SERVER_CLIENT_H_
#define RWDOM_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "util/socket.h"
#include "util/status.h"

namespace rwdom {

/// The parsed server greeting, for feature detection before the first
/// request. Tolerant of old servers: an unparseable or absent greeting
/// body parses as protocol_version 1 with no capabilities.
struct ServerGreeting {
  int protocol_version = 1;
  std::vector<std::string> capabilities;

  bool Has(const std::string& capability) const {
    for (const std::string& tag : capabilities) {
      if (tag == capability) return true;
    }
    return false;
  }
};

/// Parses one greeting line ({"rwdom": {"protocol_version": N,
/// "capabilities": [...]}}); never fails, see ServerGreeting.
ServerGreeting ParseServerGreeting(const std::string& greeting_line);

/// One connection to a query server. Requests are strictly
/// request/response over the connection, matching the server's
/// per-connection ordering guarantee.
class QueryClient {
 public:
  /// Connects and consumes the server's one-line greeting (protocol v2:
  /// {"rwdom": {"protocol_version": ..., "capabilities": [...]}}), so
  /// the first Roundtrip response is the first *request's* response. An
  /// EOF before the greeting is an IoError.
  static Result<QueryClient> Connect(const std::string& host, int port);

  /// The raw greeting line consumed at Connect — capability detection
  /// without an extra request.
  const std::string& greeting() const { return greeting_; }

  /// The greeting, parsed once at Connect (protocol_version,
  /// capability tags). `server_greeting().Has("multi_graph")` is how
  /// callers feature-detect protocol v3 tenancy.
  const ServerGreeting& server_greeting() const { return server_greeting_; }

  /// Sends one request line and blocks for its response line. An EOF
  /// before the response (server shut down mid-request) is an IoError.
  Result<std::string> Roundtrip(const std::string& line);

 private:
  explicit QueryClient(UniqueFd connection);

  // shared_ptr keeps QueryClient movable while LineReader holds the fd.
  std::shared_ptr<UniqueFd> connection_;
  std::shared_ptr<LineReader> reader_;
  std::string greeting_;
  ServerGreeting server_greeting_;
};

/// How a RetryingClient paces reconnect attempts. Backoff for attempt k
/// is exponential (base_ms * 2^k, capped at max_backoff_ms) with
/// deterministic jitter drawn from a SplitMix64 stream seeded by
/// jitter_seed — the same seed and the same failure sequence wait the
/// same milliseconds every run. A server-provided retry_after_ms hint
/// acts as a floor on the wait.
struct RetryPolicy {
  int max_retries = 0;       ///< Extra attempts after the first (0 = off).
  int base_ms = 100;         ///< First backoff; doubles per attempt.
  int max_backoff_ms = 5000;
  uint64_t jitter_seed = 0;
  /// Injected wait (tests pass a recorder / fast-forward). Defaults to
  /// std::this_thread::sleep_for.
  std::function<void(int /*millis*/)> sleeper;
};

/// QueryClient wrapper that transparently survives an overloaded or
/// restarting server. Retries exactly two failure shapes:
///   - connect failures (refused, greeting EOF), and
///   - complete Unavailable error responses (shed / at capacity).
/// It never retries after a partial response or a mid-request transport
/// error — the request may have executed, and replaying a non-idempotent
/// line (e.g. shutdown) would be wrong. Non-Unavailable error responses
/// are returned to the caller as-is (they are answers, not outages).
class RetryingClient {
 public:
  RetryingClient(std::string host, int port, RetryPolicy policy);

  /// Sends one line, reconnecting/backing off per the policy. Connects
  /// lazily on first use.
  Result<std::string> Roundtrip(const std::string& line);

  /// Greeting of the current connection (empty before the first
  /// successful connect).
  const std::string& greeting() const { return greeting_; }

  /// Parsed greeting of the current connection (protocol_version 1, no
  /// capabilities before the first successful connect).
  const ServerGreeting& server_greeting() const { return server_greeting_; }

  /// Total backoff-and-retry cycles performed (tests assert the shed →
  /// retry → served sequence happened).
  int64_t retries_performed() const { return retries_performed_; }

 private:
  Status EnsureConnected();
  /// Waits out attempt `attempt`'s backoff (or the server's hint if
  /// larger). Fails when the policy is out of retries.
  Status Backoff(int attempt, int server_hint_ms);

  const std::string host_;
  const int port_;
  RetryPolicy policy_;
  uint64_t jitter_state_;
  std::optional<QueryClient> client_;
  std::string greeting_;
  ServerGreeting server_greeting_;
  int64_t retries_performed_ = 0;
};

/// Sends every request line of `script` (blank lines and #-comments
/// skipped — the batch-script conventions) over one connection and
/// writes each response line to `out`. Returns the responses' count via
/// `queries` when non-null. Transport failures abort with the error;
/// per-request {"error": ...} responses are printed like any response
/// (the server keeps the connection open for them).
Status StreamQueryScript(QueryClient& client, std::istream& script,
                         std::ostream& out, int64_t* queries = nullptr);

/// StreamQueryScript over a RetryingClient: same framing, but shed
/// connections and connect failures back off and retry per the policy.
Status StreamQueryScriptWithRetry(RetryingClient& client,
                                  std::istream& script, std::ostream& out,
                                  int64_t* queries = nullptr);

/// Convenience for tests and benches: connect, send `lines`, return the
/// response lines (1:1 with the request lines).
Result<std::vector<std::string>> RunQueryLines(
    const std::string& host, int port, const std::vector<std::string>& lines);

}  // namespace rwdom

#endif  // RWDOM_SERVER_CLIENT_H_
