// Client side of the JSONL query protocol: connect to a running
// `rwdom serve`, send request lines, read the one response line each
// produces. Used by `rwdom client`, the multi-client smoke tests and
// bench_serve_throughput.
#ifndef RWDOM_SERVER_CLIENT_H_
#define RWDOM_SERVER_CLIENT_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/socket.h"
#include "util/status.h"

namespace rwdom {

/// One connection to a query server. Requests are strictly
/// request/response over the connection, matching the server's
/// per-connection ordering guarantee.
class QueryClient {
 public:
  /// Connects and consumes the server's one-line greeting (protocol v2:
  /// {"rwdom": {"protocol_version": ..., "capabilities": [...]}}), so
  /// the first Roundtrip response is the first *request's* response. An
  /// EOF before the greeting is an IoError.
  static Result<QueryClient> Connect(const std::string& host, int port);

  /// The raw greeting line consumed at Connect — capability detection
  /// without an extra request.
  const std::string& greeting() const { return greeting_; }

  /// Sends one request line and blocks for its response line. An EOF
  /// before the response (server shut down mid-request) is an IoError.
  Result<std::string> Roundtrip(const std::string& line);

 private:
  explicit QueryClient(UniqueFd connection);

  // shared_ptr keeps QueryClient movable while LineReader holds the fd.
  std::shared_ptr<UniqueFd> connection_;
  std::shared_ptr<LineReader> reader_;
  std::string greeting_;
};

/// Sends every request line of `script` (blank lines and #-comments
/// skipped — the batch-script conventions) over one connection and
/// writes each response line to `out`. Returns the responses' count via
/// `queries` when non-null. Transport failures abort with the error;
/// per-request {"error": ...} responses are printed like any response
/// (the server keeps the connection open for them).
Status StreamQueryScript(QueryClient& client, std::istream& script,
                         std::ostream& out, int64_t* queries = nullptr);

/// Convenience for tests and benches: connect, send `lines`, return the
/// response lines (1:1 with the request lines).
Result<std::vector<std::string>> RunQueryLines(
    const std::string& host, int port, const std::vector<std::string>& lines);

}  // namespace rwdom

#endif  // RWDOM_SERVER_CLIENT_H_
