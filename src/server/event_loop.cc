#include "server/event_loop.h"

#include <cstdlib>
#include <utility>

#include "util/fault.h"
#include "util/logging.h"
#include "util/strings.h"

namespace rwdom {

const char* IoModeName(IoMode mode) {
  return mode == IoMode::kEpoll ? "epoll" : "threaded";
}

Result<IoMode> ParseIoMode(std::string_view name) {
  if (name == "threaded") return IoMode::kThreaded;
  if (name == "epoll") return IoMode::kEpoll;
  return Status::InvalidArgument(
      StrFormat("unknown io mode '%s' (want threaded|epoll)",
                std::string(name).c_str()));
}

IoMode DefaultIoMode() {
  const char* env = std::getenv("RWDOM_IO");
  if (env != nullptr && *env != '\0') {
    auto parsed = ParseIoMode(env);
    if (parsed.ok()) return *parsed;
    RWDOM_LOG(WARNING) << "ignoring unrecognized RWDOM_IO='" << env
                       << "' (want threaded|epoll)";
  }
#ifdef __linux__
  return IoMode::kEpoll;
#else
  return IoMode::kThreaded;
#endif
}

EventLoopShard::EventLoopShard(EventLoopConfig config, EventLoopHooks hooks)
    : config_(config), hooks_(std::move(hooks)) {
  RWDOM_CHECK(hooks_.handle_line != nullptr);
  RWDOM_CHECK(hooks_.oversized_response != nullptr);
}

EventLoopShard::~EventLoopShard() {
  Stop();
  Join();
}

Status EventLoopShard::Start() {
  RWDOM_ASSIGN_OR_RETURN(epoll_, EpollSet::Create());
  RWDOM_ASSIGN_OR_RETURN(wake_, MakeWakePipe());
  // Non-blocking read end so DrainWakePipe can collapse queued pokes.
  RWDOM_RETURN_IF_ERROR(SetNonBlocking(wake_.read_end.get()));
  RWDOM_RETURN_IF_ERROR(
      epoll_.Add(wake_.read_end.get(), /*want_read=*/true,
                 /*want_write=*/false));
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void EventLoopShard::Adopt(UniqueFd connection) {
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    inbox_.push_back(std::move(connection));
  }
  if (wake_.write_end.valid()) PokeWakePipe(wake_.write_end.get());
}

void EventLoopShard::Stop() {
  stopping_.store(true);
  if (wake_.write_end.valid()) PokeWakePipe(wake_.write_end.get());
}

void EventLoopShard::Join() {
  if (thread_.joinable()) thread_.join();
  // Connections adopted after the loop exited never got service; their
  // fds close here and the accept thread's active-connection increment
  // is balanced, like a queued-but-never-served worker-pool connection.
  std::vector<UniqueFd> orphans;
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    orphans.swap(inbox_);
  }
  for ([[maybe_unused]] UniqueFd& orphan : orphans) {
    if (hooks_.on_connection_closed) hooks_.on_connection_closed();
  }
}

void EventLoopShard::Run() {
  std::vector<ReadyEvent> events;
  for (;;) {
    if (stopping_.load() && !draining_) EnterDrainMode();
    if (draining_ && connections_.empty()) {
      AdoptPending();  // Late arrivals are closed unserved while draining.
      if (connections_.empty()) break;
    }
    auto waited = epoll_.Wait(&events, NextTimeoutMs());
    if (!waited.ok()) {
      RWDOM_LOG(WARNING) << "rwdom serve: event loop wait failed: "
                         << waited.status();
      break;
    }
    bool woken = false;
    for (const ReadyEvent& event : events) {
      if (event.fd == wake_.read_end.get()) {
        woken = true;
        continue;
      }
      ServiceConnection(event);
    }
    if (woken) {
      DrainWakePipe(wake_.read_end.get());
      if (stopping_.load() && !draining_) EnterDrainMode();
      AdoptPending();
    }
    SweepWriteStalls();
  }
  while (!connections_.empty()) CloseConnection(connections_.begin()->first);
}

void EventLoopShard::AdoptPending() {
  std::vector<UniqueFd> adopted;
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    adopted.swap(inbox_);
  }
  for (UniqueFd& connection : adopted) {
    if (draining_ || !SetNonBlocking(connection.get()).ok()) {
      if (hooks_.on_connection_closed) hooks_.on_connection_closed();
      continue;  // UniqueFd closes the socket on scope exit.
    }
    const int fd = connection.get();
    auto [it, inserted] = connections_.try_emplace(
        fd, Connection(std::move(connection), config_.max_request_bytes));
    RWDOM_CHECK(inserted);
    if (!epoll_.Add(fd, /*want_read=*/true, /*want_write=*/false).ok()) {
      connections_.erase(it);
      if (hooks_.on_connection_closed) hooks_.on_connection_closed();
    }
  }
}

void EventLoopShard::ServiceConnection(const ReadyEvent& event) {
  auto it = connections_.find(event.fd);
  if (it == connections_.end()) return;  // Closed earlier in this batch.
  Connection& conn = it->second;
  if (event.error) {
    CloseConnection(event.fd);
    return;
  }
  bool alive = true;
  if (event.readable && !conn.paused && !conn.saw_eof && !draining_ &&
      !conn.close_after_flush) {
    alive = ReadAndDecode(conn);
  }
  if (alive) alive = Flush(conn);
  if (!alive) {
    CloseConnection(event.fd);
    return;
  }
  UpdateInterest(conn);
}

bool EventLoopShard::ReadAndDecode(Connection& conn) {
  char buf[16384];
  for (;;) {
    bool eof = false;
    auto got = RecvSome(conn.fd.get(), buf, sizeof(buf), &eof);
    if (!got.ok()) return false;
    if (eof) {
      conn.saw_eof = true;
      conn.decoder.NotifyEof();
      ProcessDecoded(conn);
      return true;
    }
    if (*got == 0) return true;  // Socket drained; level-trigger re-arms.
    conn.decoder.Append(std::string_view(buf, *got));
    ProcessDecoded(conn);
    if (conn.paused || conn.close_after_flush || draining_) return true;
  }
}

void EventLoopShard::ProcessDecoded(Connection& conn) {
  std::string line;
  for (;;) {
    if (conn.close_after_flush) return;
    if (conn.outbuf.size() - conn.out_offset >= config_.write_buffer_bytes) {
      // Backpressure: the peer is not draining its responses, so this
      // connection stops being read (and its remaining decoded lines
      // stay buffered) until the write side catches up. Other
      // connections on the shard are unaffected.
      if (!conn.paused) {
        conn.paused = true;
        if (hooks_.on_backpressure_pause) hooks_.on_backpressure_pause();
      }
      return;
    }
    if (draining_) {
      conn.close_after_flush = true;
      return;
    }
    switch (conn.decoder.Next(&line)) {
      case LineDecoder::Event::kNeedMore:
        if (conn.saw_eof && conn.decoder.finished()) {
          conn.close_after_flush = true;
        }
        return;
      case LineDecoder::Event::kOverflow:
        if (!EnqueueResponse(conn, hooks_.oversized_response())) return;
        break;
      case LineDecoder::Event::kLine: {
        std::string_view trimmed = StripWhitespace(line);
        if (trimmed.empty() || trimmed.front() == '#') break;
        const std::string response = hooks_.handle_line(std::string(trimmed));
        if (!EnqueueResponse(conn, response)) return;
        // Mirrors the threaded path's post-response stopping_ check: the
        // in-flight response is delivered even mid-shutdown, further
        // pipelined requests on this connection are cut off.
        if (stopping_.load()) {
          conn.close_after_flush = true;
          return;
        }
        break;
      }
    }
  }
}

bool EventLoopShard::EnqueueResponse(Connection& conn,
                                     const std::string& response) {
  // The fault site fires once per response message — the same cadence
  // as the blocking SendAll path — so one RWDOM_FAULTS schedule counts
  // identical sends in both io modes.
  if (!FaultPoint("socket.send").ok()) {
    // The blocking path drops the connection on a send fault; here the
    // responses already queued ahead of this one were genuinely "sent"
    // earlier in the blocking path's terms, so they still flush.
    conn.close_after_flush = true;
    return false;
  }
  if (conn.outbuf.size() == conn.out_offset) {
    conn.stall_since = std::chrono::steady_clock::now();
  }
  conn.outbuf.append(response);
  conn.outbuf.push_back('\n');
  return true;
}

bool EventLoopShard::FlushWrites(Connection& conn) {
  while (conn.out_offset < conn.outbuf.size()) {
    auto sent = SendSome(
        conn.fd.get(),
        std::string_view(conn.outbuf).substr(conn.out_offset));
    if (!sent.ok()) return false;
    if (*sent == 0) break;  // Kernel buffer full; EPOLLOUT will re-arm.
    conn.out_offset += *sent;
    // Any progress re-arms the stall clock: the timeout catches peers
    // that stopped draining, not peers that drain slowly.
    conn.stall_since = std::chrono::steady_clock::now();
  }
  if (conn.out_offset == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_offset = 0;
  } else if (conn.out_offset > (1u << 16)) {
    conn.outbuf.erase(0, conn.out_offset);
    conn.out_offset = 0;
  }
  return true;
}

bool EventLoopShard::Flush(Connection& conn) {
  for (;;) {
    if (!FlushWrites(conn)) return false;
    const size_t pending = conn.outbuf.size() - conn.out_offset;
    if (pending == 0 && conn.close_after_flush) return false;
    if (conn.paused && !conn.close_after_flush && !draining_ &&
        pending <= config_.write_buffer_bytes / 2) {
      // The peer caught up: resume dispatching the lines that were
      // decoded (or still sit undecoded) before the pause. EPOLLIN
      // comes back via UpdateInterest once we return.
      conn.paused = false;
      ProcessDecoded(conn);
      if (conn.outbuf.size() - conn.out_offset != pending) continue;
    }
    return true;
  }
}

void EventLoopShard::UpdateInterest(Connection& conn) {
  const bool want_read = !conn.paused && !conn.saw_eof && !draining_ &&
                         !conn.close_after_flush;
  const bool want_write = conn.out_offset < conn.outbuf.size();
  if (want_read == conn.want_read && want_write == conn.want_write) return;
  conn.want_read = want_read;
  conn.want_write = want_write;
  (void)epoll_.Modify(conn.fd.get(), want_read, want_write);
}

void EventLoopShard::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  (void)epoll_.Remove(fd);
  connections_.erase(it);  // UniqueFd closes the socket.
  if (hooks_.on_connection_closed) hooks_.on_connection_closed();
}

int EventLoopShard::NextTimeoutMs() const {
  if (config_.write_timeout_ms <= 0) return -1;
  const auto now = std::chrono::steady_clock::now();
  int best = -1;
  for (const auto& [fd, conn] : connections_) {
    if (conn.out_offset == conn.outbuf.size()) continue;
    const auto expiry =
        conn.stall_since + std::chrono::milliseconds(config_.write_timeout_ms);
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(expiry - now)
            .count();
    const int ms = remaining <= 0 ? 0 : static_cast<int>(remaining) + 1;
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

void EventLoopShard::SweepWriteStalls() {
  if (config_.write_timeout_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> stalled;
  for (const auto& [fd, conn] : connections_) {
    if (conn.out_offset == conn.outbuf.size()) continue;
    if (now - conn.stall_since >=
        std::chrono::milliseconds(config_.write_timeout_ms)) {
      stalled.push_back(fd);
    }
  }
  for (int fd : stalled) {
    if (hooks_.on_write_timeout) hooks_.on_write_timeout();
    RWDOM_LOG(WARNING) << "rwdom serve: dropped stalled client (write "
                       << "buffer idle past " << config_.write_timeout_ms
                       << " ms)";
    CloseConnection(fd);
  }
}

void EventLoopShard::EnterDrainMode() {
  draining_ = true;
  std::vector<int> drained;
  for (auto& [fd, conn] : connections_) {
    if (conn.out_offset == conn.outbuf.size()) {
      drained.push_back(fd);
    } else {
      conn.close_after_flush = true;
      UpdateInterest(conn);
    }
  }
  for (int fd : drained) CloseConnection(fd);
}

}  // namespace rwdom
