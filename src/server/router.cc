#include "server/router.h"

#include <algorithm>
#include <utility>

#include "server/protocol.h"
#include "service/graph_registry.h"
#include "service/wire.h"
#include "util/fingerprint.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/strings.h"

namespace rwdom {
namespace {

/// One ring point: the hash of "address#vnode". Length-prefixed string
/// hashing (UpdateString) keeps "a#11" and "a1#1" distinct.
uint64_t RingPoint(const std::string& address, int vnode) {
  Fingerprint fp;
  fp.UpdateString(address);
  fp.UpdatePod(static_cast<int64_t>(vnode));
  return fp.Digest();
}

uint64_t NameHash(std::string_view name) {
  Fingerprint fp;
  fp.UpdateString(name);
  return fp.Digest();
}

}  // namespace

HashRing::HashRing(std::vector<std::string> backends)
    : backends_(std::move(backends)) {
  points_.reserve(backends_.size() * kVirtualNodesPerBackend);
  for (size_t i = 0; i < backends_.size(); ++i) {
    for (int v = 0; v < kVirtualNodesPerBackend; ++v) {
      points_.emplace_back(RingPoint(backends_[i], v), i);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::vector<const std::string*> HashRing::RouteOrder(
    std::string_view name) const {
  std::vector<const std::string*> order;
  if (points_.empty()) return order;
  order.reserve(backends_.size());
  std::vector<bool> seen(backends_.size(), false);
  const uint64_t hash = NameHash(name);
  auto start = std::lower_bound(
      points_.begin(), points_.end(),
      std::make_pair(hash, static_cast<size_t>(0)));
  for (size_t walked = 0;
       walked < points_.size() && order.size() < backends_.size();
       ++walked) {
    if (start == points_.end()) start = points_.begin();
    if (!seen[start->second]) {
      seen[start->second] = true;
      order.push_back(&backends_[start->second]);
    }
    ++start;
  }
  return order;
}

QueryRouter::QueryRouter(std::vector<std::string> backends,
                         RouterOptions options)
    : ring_(std::move(backends)), options_(std::move(options)) {
  RWDOM_CHECK(!ring_.backends().empty()) << "QueryRouter needs backends";
  RWDOM_CHECK(options_.threads >= 1);
  RWDOM_CHECK(options_.max_connections >= 1);
  auto wake = MakeWakePipe();
  RWDOM_CHECK(wake.ok()) << wake.status();
  wake_ = std::move(*wake);
}

QueryRouter::~QueryRouter() { Shutdown(); }

Status QueryRouter::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    RWDOM_CHECK(!started_) << "QueryRouter::Start called twice";
    started_ = true;
  }
  // Probe the backends for their capability tags (best effort — a down
  // backend just contributes nothing) and greet clients with the union
  // plus "router", so feature detection works one hop removed.
  std::vector<std::string> capabilities;
  const auto add_capability = [&capabilities](const std::string& tag) {
    if (std::find(capabilities.begin(), capabilities.end(), tag) ==
        capabilities.end()) {
      capabilities.push_back(tag);
    }
  };
  for (const std::string& address : ring_.backends()) {
    auto probed = BackendClients();
    auto client = BackendFor(address, probed);
    if (!client.ok()) continue;
    for (const std::string& tag : (*client)->server_greeting().capabilities) {
      add_capability(tag);
    }
  }
  if (capabilities.empty()) capabilities = BaseCapabilities();
  add_capability("router");
  {
    JsonWriter json;
    json.BeginObject();
    json.Key("rwdom").BeginObject();
    json.Key("protocol_version").Int(kProtocolVersion);
    json.Key("capabilities").BeginArray();
    for (const std::string& tag : capabilities) json.String(tag);
    json.EndArray();
    json.EndObject();
    json.EndObject();
    greeting_line_ = json.ToString();
  }
  RWDOM_ASSIGN_OR_RETURN(
      listener_,
      TcpListen(options_.host, options_.port,
                /*backlog=*/options_.max_connections));
  RWDOM_ASSIGN_OR_RETURN(port_, LocalPort(listener_.get()));
  workers_.reserve(static_cast<size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryRouter::NotifyShutdown() {
  if (wake_.write_end.valid()) PokeWakePipe(wake_.write_end.get());
}

void QueryRouter::BeginShutdown() {
  if (stopping_.exchange(true)) return;
  if (wake_.write_end.valid()) PokeWakePipe(wake_.write_end.get());
  {
    // Lost-wakeup bracket, same as QueryServer::BeginShutdown.
    std::lock_guard<std::mutex> lock(queue_mutex_);
  }
  queue_cv_.notify_all();
}

void QueryRouter::AcceptLoop() {
  for (;;) {
    if (stopping_.load()) break;
    auto accepted = AcceptWithWake(listener_.get(), wake_.read_end.get());
    if (!accepted.ok()) {
      RWDOM_LOG(WARNING) << "rwdom route: accept failed, shutting down: "
                         << accepted.status();
      break;
    }
    if (!accepted->has_value()) break;  // Woken: shutdown requested.
    UniqueFd connection = std::move(**accepted);
    connections_accepted_.fetch_add(1);
    if (!SendAll(connection.get(), greeting_line_ + "\n").ok()) continue;
    if (active_connections_.load() >= options_.max_connections) {
      connections_rejected_.fetch_add(1);
      (void)SendAll(connection.get(),
                    ErrorResponseLine(
                        "Unavailable",
                        StrFormat("router at --max_connections=%d",
                                  options_.max_connections),
                        options_.retry_after_ms) +
                        "\n");
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      active_connections_.fetch_add(1);
      pending_.push_back(std::move(connection));
    }
    queue_cv_.notify_one();
  }
  BeginShutdown();
  listener_.reset();
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void QueryRouter::WorkerLoop() {
  for (;;) {
    UniqueFd connection;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !pending_.empty();
      });
      if (pending_.empty()) return;  // Stopping and drained.
      connection = std::move(pending_.front());
      pending_.pop_front();
      if (stopping_.load()) {
        active_connections_.fetch_sub(1);
        continue;
      }
    }
    ServeConnection(std::move(connection));
    active_connections_.fetch_sub(1);
  }
}

void QueryRouter::ServeConnection(UniqueFd connection) {
  LineReader reader(connection.get(), options_.max_request_bytes);
  BackendClients clients;
  std::string line;
  const auto cancelled = [this] { return stopping_.load(); };
  for (;;) {
    auto outcome = reader.ReadLine(&line, cancelled, /*poll_interval_ms=*/50);
    if (!outcome.ok()) break;
    std::string response;
    if (*outcome == LineReader::Outcome::kOverflow) {
      requests_error_.fetch_add(1);
      response = ErrorResponseLine(
          "InvalidArgument",
          StrFormat("request line exceeds --max_request_bytes=%zu",
                    options_.max_request_bytes));
    } else if (*outcome != LineReader::Outcome::kLine) {
      break;
    } else {
      std::string_view trimmed = StripWhitespace(line);
      if (trimmed.empty() || trimmed.front() == '#') continue;
      response = RouteLine(std::string(trimmed), clients);
    }
    const Status sent = SendAllWithin(connection.get(), response + "\n",
                                      options_.write_timeout_ms);
    if (!sent.ok()) break;
    if (stopping_.load()) break;
  }
}

Result<QueryClient*> QueryRouter::BackendFor(const std::string& address,
                                             BackendClients& clients) {
  auto it = clients.find(address);
  if (it != clients.end()) return &it->second;
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("backend address needs HOST:PORT: " +
                                   address);
  }
  RWDOM_ASSIGN_OR_RETURN(int64_t port,
                         ParseInt64(address.substr(colon + 1)));
  RWDOM_ASSIGN_OR_RETURN(
      QueryClient client,
      QueryClient::Connect(address.substr(0, colon),
                           static_cast<int>(port)));
  return &clients.emplace(address, std::move(client)).first->second;
}

std::string QueryRouter::RouteLine(const std::string& line,
                                   BackendClients& clients) {
  // The strict v3 parse runs here too — a malformed line is answered by
  // the router with the exact wording a backend would use, and the
  // "graph" member is what the ring hashes.
  auto parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    requests_error_.fetch_add(1);
    return ErrorResponseLine(StatusCodeToString(parsed.status().code()),
                             parsed.status().message());
  }
  if (parsed->command == "server_stats" || parsed->command == "shutdown") {
    return FanOutAdmin(line, clients, parsed->command == "shutdown");
  }
  // An explicit {"graph":"default"} and an omitted graph must land on
  // the same backend, so normalize before hashing.
  const std::string graph =
      parsed->graph.empty() ? std::string(kDefaultGraphName) : parsed->graph;
  for (const std::string* address : ring_.RouteOrder(graph)) {
    auto client = BackendFor(*address, clients);
    if (!client.ok()) {
      // Nothing was sent to this backend; the next ring position is a
      // safe retry.
      failovers_.fetch_add(1);
      continue;
    }
    auto response = (*client)->Roundtrip(line);
    if (!response.ok()) {
      // Mid-request transport error: the backend may have executed the
      // line, so replaying it (here or on another backend) is not safe.
      // Report Unavailable with a backoff hint; the client's retry
      // policy decides, and its retry reconnects around the dead
      // backend.
      clients.erase(*address);
      requests_error_.fetch_add(1);
      return ErrorResponseLine(
          "Unavailable",
          "backend " + *address +
              " failed mid-request: " + response.status().message(),
          options_.retry_after_ms);
    }
    requests_proxied_.fetch_add(1);
    return *response;
  }
  requests_error_.fetch_add(1);
  return ErrorResponseLine(
      "Unavailable",
      "no reachable backend for graph \"" + graph + "\"",
      options_.retry_after_ms);
}

std::string QueryRouter::FanOutAdmin(const std::string& line,
                                     BackendClients& clients,
                                     bool is_shutdown) {
  admin_fanouts_.fetch_add(1);
  JsonWriter json;
  json.BeginObject();
  json.Key("router").BeginObject();
  json.Key("backends").Int(static_cast<int64_t>(ring_.backends().size()));
  if (is_shutdown) json.Key("shutting_down").Bool(true);
  json.Key("responses").BeginObject();
  for (const std::string& address : ring_.backends()) {
    json.Key(address);
    auto client = BackendFor(address, clients);
    if (!client.ok()) {
      json.Raw(ErrorResponseLine(
          StatusCodeToString(client.status().code()),
          client.status().message()));
      continue;
    }
    auto response = (*client)->Roundtrip(line);
    if (!response.ok()) {
      clients.erase(address);
      json.Raw(ErrorResponseLine("Unavailable",
                                 "backend " + address + " failed mid-request: " +
                                     response.status().message(),
                                 options_.retry_after_ms));
      continue;
    }
    json.Raw(*response);
  }
  json.EndObject();
  json.EndObject();
  json.EndObject();
  requests_proxied_.fetch_add(1);
  // The shutdown response still goes out to this client; the router
  // stops accepting afterwards, exactly like a backend's own shutdown.
  if (is_shutdown) BeginShutdown();
  return json.ToString();
}

RouterStats QueryRouter::stats() const {
  RouterStats stats;
  stats.connections_accepted = connections_accepted_.load();
  stats.connections_rejected = connections_rejected_.load();
  stats.active_connections = active_connections_.load();
  stats.requests_proxied = requests_proxied_.load();
  stats.requests_error = requests_error_.load();
  stats.failovers = failovers_.load();
  stats.admin_fanouts = admin_fanouts_.load();
  return stats;
}

void QueryRouter::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!started_) return;
  }
  BeginShutdown();
  Join();
}

void QueryRouter::Wait() {
  {
    std::unique_lock<std::mutex> lock(lifecycle_mutex_);
    if (!started_) return;
    stopped_cv_.wait(lock, [this] { return stopped_; });
  }
  Join();
}

void QueryRouter::Join() {
  std::lock_guard<std::mutex> lock(join_mutex_);
  if (joined_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> queue_lock(queue_mutex_);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  joined_ = true;
}

}  // namespace rwdom
