// The non-blocking serving core behind `rwdom serve --io=epoll`: N
// independent event-loop shards, each owning an epoll set and a slice
// of the accepted connections. Compared to the worker-pool path a
// shard never parks a thread on one peer's socket, which buys two
// things the blocking design cannot express:
//
//   * Request pipelining — a connection may have any number of JSONL
//     request lines in flight; responses are computed and written in
//     request order (dispatch itself stays synchronous inside the
//     shard, so ordering is by construction, not by sequence numbers).
//   * Per-connection backpressure — each connection's pending output
//     lives in a bounded write buffer. When a peer stops draining and
//     the buffer crosses its cap, the shard *stops reading* from that
//     connection (EPOLLIN off) instead of buffering without bound;
//     reading resumes once the buffer drains below half the cap. A
//     peer stalled past --write_timeout_ms is dropped, exactly like
//     the threaded path.
//
// Division of labor: the accept thread (owned by QueryServer in both
// io modes) still greets, refuses and sheds connections — by the time
// a shard adopts a connection it is a fully admitted peer. The shard
// handles framing (util/socket.h's LineDecoder), dispatch via hooks
// into the server (deadlines, admin commands, counters all live
// there), buffered writes, and the `socket.send` fault site (armed
// once per response message, matching the blocking sender's cadence).
//
// Shutdown: Stop() flips a flag and pokes the shard's wake pipe. The
// shard then stops reading everywhere, finishes writing what is
// already buffered (an in-flight response is delivered even
// mid-shutdown; further pipelined requests are cut off), closes each
// connection as it drains, and exits.
#ifndef RWDOM_SERVER_EVENT_LOOP_H_
#define RWDOM_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/socket.h"
#include "util/status.h"

namespace rwdom {

/// Which serving core `QueryServer` runs. Both speak the identical wire
/// protocol; the threaded path is kept as the diff-testing reference
/// (and the only option off-Linux).
enum class IoMode {
  kThreaded,  ///< Accept thread + worker pool, blocking sockets.
  kEpoll,     ///< Event-loop shards, non-blocking sockets (Linux).
};

const char* IoModeName(IoMode mode);
Result<IoMode> ParseIoMode(std::string_view name);

/// The build/platform default: epoll on Linux, threaded elsewhere. The
/// `RWDOM_IO` environment variable ("epoll"/"threaded") overrides —
/// that is how CI lanes run one binary's test suite under both cores.
IoMode DefaultIoMode();

struct EventLoopConfig {
  /// Budget for a peer that stops draining its socket while responses
  /// are pending; past it the connection is dropped. 0 = no limit.
  int write_timeout_ms = 30'000;
  /// Per-request-line byte cap (the LineDecoder's max_line_bytes).
  size_t max_request_bytes = LineDecoder::kDefaultMaxLineBytes;
  /// Backpressure cap on a connection's buffered, unsent output.
  /// Crossing it pauses reads from that connection; reads resume below
  /// half of it.
  size_t write_buffer_bytes = 256 * 1024;
};

/// The shard's upcalls into QueryServer. All counters, deadlines and
/// response formatting live server-side so the two io modes cannot
/// drift; the shard only frames, orders and buffers. Every hook is
/// called from the shard's own thread (but different shards call
/// concurrently — the server side must be thread-safe, which it
/// already is for the worker pool).
struct EventLoopHooks {
  /// One trimmed, non-empty, non-comment request line -> exactly one
  /// JSON response line (no trailing newline). The server wraps its
  /// HandleLine: the request's deadline starts here, at dispatch —
  /// which under this core is also arrival, since decoded lines are
  /// dispatched immediately.
  std::function<std::string(const std::string& line)> handle_line;
  /// An over-cap request line was discarded (stream already resynced);
  /// returns the error response line to send in its place.
  std::function<std::string()> oversized_response;
  /// A connection was dropped for stalling past write_timeout_ms.
  std::function<void()> on_write_timeout;
  /// A connection's reads were paused at the write-buffer cap.
  std::function<void()> on_backpressure_pause;
  /// Any connection closed, for whatever reason (balances the accept
  /// thread's active-connection increment).
  std::function<void()> on_connection_closed;
};

/// One event-loop thread and the connections it owns. Connections
/// enter via Adopt (any thread) and never migrate between shards.
class EventLoopShard {
 public:
  EventLoopShard(EventLoopConfig config, EventLoopHooks hooks);
  ~EventLoopShard();

  EventLoopShard(const EventLoopShard&) = delete;
  EventLoopShard& operator=(const EventLoopShard&) = delete;

  /// Creates the epoll set + wake pipe and spawns the loop thread.
  Status Start();

  /// Hands a freshly accepted (already greeted) connection to this
  /// shard. Thread-safe. A connection adopted after Stop() is closed
  /// without service, like a queued-but-never-served connection in the
  /// threaded path.
  void Adopt(UniqueFd connection);

  /// Begins drain-and-exit (see file comment). Async-safe enough for
  /// any thread; idempotent.
  void Stop();

  /// Joins the loop thread. Call after Stop().
  void Join();

 private:
  struct Connection {
    UniqueFd fd;
    LineDecoder decoder;
    /// Pending output; [out_offset, size) is unsent. Compacted rather
    /// than erased per send so a slow drain is not quadratic.
    std::string outbuf;
    size_t out_offset = 0;
    // Current epoll interest, to skip no-op EPOLL_CTL_MODs.
    bool want_read = true;
    bool want_write = false;
    bool paused = false;     ///< Reads off at the write-buffer cap.
    bool saw_eof = false;    ///< Peer half-closed; flush, then close.
    bool close_after_flush = false;
    /// Set while outbuf is non-empty; re-armed on any write progress,
    /// so it times out stalls, not slow-but-moving drains. OS clock by
    /// necessity, like SendAllWithin's budget.
    std::chrono::steady_clock::time_point stall_since{};

    explicit Connection(UniqueFd fd_in, size_t max_line_bytes)
        : fd(std::move(fd_in)), decoder(max_line_bytes) {}
  };

  void Run();
  void AdoptPending();
  /// Full service of one readiness event: read + decode + dispatch +
  /// flush + interest re-arm; closes the connection when it dies.
  void ServiceConnection(const ReadyEvent& event);
  /// Reads until EAGAIN/EOF (or backpressure pauses the connection),
  /// dispatching decoded lines as they complete. Returns false on a
  /// hard socket error.
  bool ReadAndDecode(Connection& conn);
  /// Drains decoded lines into dispatch + the write buffer, honoring
  /// backpressure and shutdown.
  void ProcessDecoded(Connection& conn);
  /// Queues one response message (arming the socket.send fault site).
  /// Returns false on an injected fault: flush what was already
  /// queued, then close — the blocking path's "drop on send error".
  bool EnqueueResponse(Connection& conn, const std::string& response);
  /// One pass of non-blocking sends. Returns false on a hard error.
  bool FlushWrites(Connection& conn);
  /// Flush + backpressure resume + close-after-flush. Returns false
  /// when the connection should close now.
  bool Flush(Connection& conn);
  void UpdateInterest(Connection& conn);
  void CloseConnection(int fd);
  /// The epoll_wait budget: -1, or the nearest write-stall deadline.
  int NextTimeoutMs() const;
  /// Drops connections whose write buffer made no progress past
  /// write_timeout_ms.
  void SweepWriteStalls();
  void EnterDrainMode();

  const EventLoopConfig config_;
  const EventLoopHooks hooks_;

  EpollSet epoll_;
  WakePipe wake_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};

  std::mutex inbox_mutex_;
  std::vector<UniqueFd> inbox_;

  std::unordered_map<int, Connection> connections_;
  bool draining_ = false;  ///< Loop-thread view of stopping_.
};

}  // namespace rwdom

#endif  // RWDOM_SERVER_EVENT_LOOP_H_
