// The fleet front behind `rwdom route`: one JSONL endpoint that fans a
// multi-graph workload out over many `rwdom serve` backends.
//
// Placement is consistent hashing on the graph name: every backend
// contributes kVirtualNodesPerBackend points to a hash ring, and a
// request's graph (protocol v3 `"graph"` member; omitted = the default
// graph) is served by the first backend clockwise from the name's hash.
// Adding or removing one backend therefore remaps only the names that
// hashed to it — the property that makes a fleet resizable without
// re-warming every cache.
//
// Failover is deliberately asymmetric, mirroring RetryingClient's
// replay rules:
//   * a backend we cannot CONNECT to is skipped — nothing was sent, so
//     trying the next ring position is always safe (bounded by ring
//     size, counted in RouterStats::failovers);
//   * a backend that dies MID-REQUEST gets no failover — the request
//     may have executed, so the client receives a complete Unavailable
//     error line (with retry_after_ms) and its own retry policy
//     decides; the router's next attempt starts from a fresh connect
//     and takes the surviving ring positions.
//
// Admin requests (`server_stats`, `shutdown`) are not placed on the
// ring: they scatter to every backend and gather the raw per-backend
// response lines into one merged {"router": ...} object. `shutdown`
// additionally stops the router itself after responding.
//
// Request lines are forwarded byte-for-byte (after whitespace
// trimming), so a response through the router is the exact line the
// backend produced — the byte-identity contract clients already rely
// on, now one hop removed.
#ifndef RWDOM_SERVER_ROUTER_H_
#define RWDOM_SERVER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "server/client.h"
#include "util/socket.h"
#include "util/status.h"

namespace rwdom {

/// Consistent-hash ring over backend addresses. Immutable once built;
/// safe to share across threads.
class HashRing {
 public:
  /// Points each backend contributes. 64 keeps the per-name load spread
  /// within a few percent of uniform for small fleets while the ring
  /// stays tiny (64 * backends entries).
  static constexpr int kVirtualNodesPerBackend = 64;

  explicit HashRing(std::vector<std::string> backends);

  const std::vector<std::string>& backends() const { return backends_; }

  /// Every backend, deduplicated, in clockwise ring order starting at
  /// `name`'s hash — the try-order for placing `name`. Deterministic:
  /// the same name and backend set always yield the same order.
  std::vector<const std::string*> RouteOrder(std::string_view name) const;

 private:
  std::vector<std::string> backends_;
  /// (point hash, backend index), sorted by hash.
  std::vector<std::pair<uint64_t, size_t>> points_;
};

struct RouterOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 picks an ephemeral port (see QueryRouter::port()).
  int threads = 4;
  int max_connections = 64;
  /// The backoff hint carried by Unavailable responses (mid-request
  /// backend loss, no reachable backend).
  int retry_after_ms = 250;
  int write_timeout_ms = 30'000;
  size_t max_request_bytes = LineReader::kDefaultMaxLineBytes;
};

struct RouterStats {
  int64_t connections_accepted = 0;
  int64_t connections_rejected = 0;
  int64_t active_connections = 0;
  int64_t requests_proxied = 0;  ///< Lines answered by a backend.
  int64_t requests_error = 0;    ///< Error lines the router itself sent.
  int64_t failovers = 0;         ///< Ring advances past unreachable backends.
  int64_t admin_fanouts = 0;     ///< Scatter-gathered admin requests.
};

class QueryRouter {
 public:
  /// `backends` are HOST:PORT strings; the ring is fixed for the
  /// router's lifetime. Backends may be down at construction — the ring
  /// routes around them until they return.
  QueryRouter(std::vector<std::string> backends, RouterOptions options);
  ~QueryRouter();

  QueryRouter(const QueryRouter&) = delete;
  QueryRouter& operator=(const QueryRouter&) = delete;

  /// Probes the backends for their greetings (best effort), binds,
  /// listens and spawns the accept + worker threads. Call once.
  Status Start();

  /// The actually bound port (== options.port unless that was 0).
  int port() const { return port_; }

  const HashRing& ring() const { return ring_; }

  /// Async-signal-safe shutdown poke, same contract as QueryServer.
  void NotifyShutdown();

  /// NotifyShutdown + wait for every thread to finish. Idempotent.
  void Shutdown();

  /// Blocks until the router shut down and every thread is joined.
  void Wait();

  RouterStats stats() const;

 private:
  /// Per-connection cache of live backend connections: session affinity
  /// without locks (each map is owned by one worker's connection frame).
  using BackendClients = std::map<std::string, QueryClient>;

  void BeginShutdown();
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(UniqueFd connection);
  /// One request line -> one response line (routed or scatter-gathered).
  std::string RouteLine(const std::string& line, BackendClients& clients);
  std::string FanOutAdmin(const std::string& line, BackendClients& clients,
                          bool is_shutdown);
  Result<QueryClient*> BackendFor(const std::string& address,
                                  BackendClients& clients);
  void Join();

  const HashRing ring_;
  const RouterOptions options_;
  /// The router's own greeting: the union of the backends' capability
  /// tags (probed at Start) plus "router".
  std::string greeting_line_;

  UniqueFd listener_;
  WakePipe wake_;
  int port_ = 0;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<UniqueFd> pending_;

  std::mutex lifecycle_mutex_;
  std::condition_variable stopped_cv_;
  bool started_ = false;
  bool stopped_ = false;
  std::mutex join_mutex_;
  bool joined_ = false;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_rejected_{0};
  std::atomic<int64_t> active_connections_{0};
  std::atomic<int64_t> requests_proxied_{0};
  std::atomic<int64_t> requests_error_{0};
  std::atomic<int64_t> failovers_{0};
  std::atomic<int64_t> admin_fanouts_{0};
};

}  // namespace rwdom

#endif  // RWDOM_SERVER_ROUTER_H_
