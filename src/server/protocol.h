// Wire-protocol versioning for the JSONL query protocol.
//
// Protocol history:
//   1  the original unversioned protocol: '\n'-framed JSONL requests,
//      one response line each, no greeting — a client only learned what
//      the server could do by trying.
//   2  adds (a) a one-line JSON greeting sent by the server immediately
//      on accept — {"rwdom": {"protocol_version": N, "capabilities":
//      [...]}} — so clients can detect cache-aware servers before the
//      first request, and (b) "protocol_version" + "capabilities" +
//      persistence counters in the `server_stats` response.
//
// The request/response framing itself is unchanged across 1 -> 2; the
// greeting is purely additive, which is why the version lives in its own
// header: bumping it is an API event, not a server implementation detail.
#ifndef RWDOM_SERVER_PROTOCOL_H_
#define RWDOM_SERVER_PROTOCOL_H_

#include <string>
#include <vector>

namespace rwdom {

inline constexpr int kProtocolVersion = 2;

/// Capability tags every rwdom server speaks. `rwdom serve` appends
/// feature-gated tags (e.g. "cache" when --cache_dir is attached);
/// clients must treat unknown tags as ignorable.
inline std::vector<std::string> BaseCapabilities() {
  return {"jsonl", "batch_commands", "server_stats", "shutdown"};
}

}  // namespace rwdom

#endif  // RWDOM_SERVER_PROTOCOL_H_
