// Wire-protocol versioning for the JSONL query protocol.
//
// Protocol history:
//   1  the original unversioned protocol: '\n'-framed JSONL requests,
//      one response line each, no greeting — a client only learned what
//      the server could do by trying.
//   2  adds (a) a one-line JSON greeting sent by the server immediately
//      on accept — {"rwdom": {"protocol_version": N, "capabilities":
//      [...]}} — so clients can detect cache-aware servers before the
//      first request, and (b) "protocol_version" + "capabilities" +
//      persistence counters in the `server_stats` response.
//   3  adds multi-graph tenancy: request lines accept an optional
//      `"graph": "name"` member naming the served substrate to run
//      against (omitted = the default graph, so every v2 line is a
//      valid v3 line with identical semantics), the "multi_graph"
//      capability tag, and a per-graph "graphs" section in
//      `server_stats` when more than one graph is served. Unknown
//      top-level request members are now rejected with
//      invalid_argument instead of silently ignored.
//
// The request/response framing itself is unchanged across 1 -> 3; the
// greeting is purely additive, which is why the version lives in its own
// header: bumping it is an API event, not a server implementation detail.
#ifndef RWDOM_SERVER_PROTOCOL_H_
#define RWDOM_SERVER_PROTOCOL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace rwdom {

inline constexpr int kProtocolVersion = 3;

/// Capability tags every rwdom server speaks. `rwdom serve` appends
/// feature-gated tags (e.g. "cache" when --cache_dir is attached);
/// clients must treat unknown tags as ignorable.
inline std::vector<std::string> BaseCapabilities() {
  return {"jsonl", "batch_commands", "multi_graph", "server_stats",
          "shutdown"};
}

/// The protocol's one error-line shape, shared by the server and the
/// router so clients see identical framing from both:
/// {"error":{"code":...,"message":...[,"retry_after_ms":N]}}. A
/// negative retry_after_ms omits the member. No trailing newline —
/// callers frame the line themselves.
inline std::string ErrorResponseLine(std::string_view code,
                                     const std::string& message,
                                     int retry_after_ms = -1) {
  JsonWriter json;
  json.BeginObject()
      .Key("error")
      .BeginObject()
      .Key("code")
      .String(std::string(code))
      .Key("message")
      .String(message);
  if (retry_after_ms >= 0) {
    json.Key("retry_after_ms").Int(retry_after_ms);
  }
  json.EndObject().EndObject();
  return json.ToString();
}

}  // namespace rwdom

#endif  // RWDOM_SERVER_PROTOCOL_H_
