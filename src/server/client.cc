#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/json.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rwdom {
namespace {

/// If `response` is an {"error": {"code": "Unavailable", ...}} line,
/// returns its retry_after_ms hint (or 0 when absent). Anything else —
/// success, other errors, unparseable — is not retryable.
std::optional<int> UnavailableHintMs(const std::string& response) {
  auto parsed = ParseJson(response);
  if (!parsed.ok() || !parsed->is_object()) return std::nullopt;
  const JsonValue* error = parsed->Find("error");
  if (error == nullptr || !error->is_object()) return std::nullopt;
  const JsonValue* code = error->Find("code");
  if (code == nullptr || !code->is_string() ||
      code->string_value() != "Unavailable") {
    return std::nullopt;
  }
  const JsonValue* hint = error->Find("retry_after_ms");
  if (hint != nullptr && hint->is_number() && hint->number_value() >= 0) {
    return static_cast<int>(hint->number_value());
  }
  return 0;
}

}  // namespace

ServerGreeting ParseServerGreeting(const std::string& greeting_line) {
  ServerGreeting greeting;
  auto parsed = ParseJson(greeting_line);
  if (!parsed.ok() || !parsed->is_object()) return greeting;
  const JsonValue* body = parsed->Find("rwdom");
  if (body == nullptr || !body->is_object()) return greeting;
  const JsonValue* version = body->Find("protocol_version");
  if (version != nullptr && version->is_number()) {
    greeting.protocol_version = static_cast<int>(version->number_value());
  }
  const JsonValue* capabilities = body->Find("capabilities");
  if (capabilities != nullptr && capabilities->is_array()) {
    for (const JsonValue& tag : capabilities->array()) {
      if (tag.is_string()) greeting.capabilities.push_back(tag.string_value());
    }
  }
  return greeting;
}

QueryClient::QueryClient(UniqueFd connection)
    : connection_(std::make_shared<UniqueFd>(std::move(connection))),
      reader_(std::make_shared<LineReader>(connection_->get())) {}

Result<QueryClient> QueryClient::Connect(const std::string& host, int port) {
  RWDOM_ASSIGN_OR_RETURN(UniqueFd connection, TcpConnect(host, port));
  QueryClient client(std::move(connection));
  // The server sends its greeting on every accepted connection, before
  // any response (even a refusal) — eat exactly one line here so
  // Roundtrip sees request/response pairs only.
  RWDOM_ASSIGN_OR_RETURN(LineReader::Outcome outcome,
                         client.reader_->ReadLine(&client.greeting_));
  if (outcome != LineReader::Outcome::kLine) {
    return Status::IoError("server closed the connection before greeting");
  }
  client.server_greeting_ = ParseServerGreeting(client.greeting_);
  return client;
}

Result<std::string> QueryClient::Roundtrip(const std::string& line) {
  RWDOM_RETURN_IF_ERROR(SendAll(connection_->get(), line + "\n"));
  std::string response;
  RWDOM_ASSIGN_OR_RETURN(LineReader::Outcome outcome,
                         reader_->ReadLine(&response));
  if (outcome != LineReader::Outcome::kLine) {
    return Status::IoError("server closed the connection before responding");
  }
  return response;
}

RetryingClient::RetryingClient(std::string host, int port, RetryPolicy policy)
    : host_(std::move(host)),
      port_(port),
      policy_(std::move(policy)),
      jitter_state_(policy_.jitter_seed) {
  if (!policy_.sleeper) {
    policy_.sleeper = [](int millis) {
      std::this_thread::sleep_for(std::chrono::milliseconds(millis));
    };
  }
}

Status RetryingClient::Backoff(int attempt, int server_hint_ms) {
  if (attempt >= policy_.max_retries) {
    return Status::Unavailable(
        StrFormat("server unavailable after %d attempt(s)",
                  policy_.max_retries + 1));
  }
  // Exponential base with deterministic jitter in [base/2, base]: the
  // usual thundering-herd spreader, but reproducible — the SplitMix64
  // stream makes run N's waits identical to every other run N.
  int64_t base = policy_.base_ms;
  for (int i = 0; i < attempt && base < policy_.max_backoff_ms; ++i) {
    base *= 2;
  }
  base = std::min<int64_t>(base, policy_.max_backoff_ms);
  const int64_t half = base / 2;
  const int64_t jittered =
      half + (half > 0
                  ? static_cast<int64_t>(SplitMix64(&jitter_state_) %
                                         static_cast<uint64_t>(half + 1))
                  : 0);
  const int wait_ms =
      static_cast<int>(std::max<int64_t>(jittered, server_hint_ms));
  ++retries_performed_;
  if (wait_ms > 0) policy_.sleeper(wait_ms);
  return Status::OK();
}

Status RetryingClient::EnsureConnected() {
  if (client_.has_value()) return Status::OK();
  RWDOM_ASSIGN_OR_RETURN(QueryClient fresh,
                         QueryClient::Connect(host_, port_));
  greeting_ = fresh.greeting();
  server_greeting_ = fresh.server_greeting();
  client_.emplace(std::move(fresh));
  return Status::OK();
}

Result<std::string> RetryingClient::Roundtrip(const std::string& line) {
  for (int attempt = 0;; ++attempt) {
    Status connected = EnsureConnected();
    if (!connected.ok()) {
      // Connect failures are always safe to retry: no request was sent.
      RWDOM_RETURN_IF_ERROR(Backoff(attempt, 0));
      continue;
    }
    Result<std::string> response = client_->Roundtrip(line);
    if (!response.ok()) {
      // A transport error mid-request: the server may or may not have
      // executed the line, so replaying it is not safe. Drop the dead
      // connection (the *next* Roundtrip starts fresh) and report.
      client_.reset();
      return response.status();
    }
    const std::optional<int> hint = UnavailableHintMs(*response);
    if (!hint.has_value()) return response;
    // A complete Unavailable response: the server refused before doing
    // any work (shed or at capacity) and is about to close this
    // connection — reconnect after the hinted/backed-off wait.
    client_.reset();
    RWDOM_RETURN_IF_ERROR(Backoff(attempt, *hint));
  }
}

Status StreamQueryScript(QueryClient& client, std::istream& script,
                         std::ostream& out, int64_t* queries) {
  if (queries != nullptr) *queries = 0;
  std::string line;
  while (std::getline(script, line)) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    RWDOM_ASSIGN_OR_RETURN(std::string response,
                           client.Roundtrip(std::string(trimmed)));
    out << response << "\n";
    if (queries != nullptr) ++*queries;
  }
  return Status::OK();
}

Status StreamQueryScriptWithRetry(RetryingClient& client,
                                  std::istream& script, std::ostream& out,
                                  int64_t* queries) {
  if (queries != nullptr) *queries = 0;
  std::string line;
  while (std::getline(script, line)) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    RWDOM_ASSIGN_OR_RETURN(std::string response,
                           client.Roundtrip(std::string(trimmed)));
    out << response << "\n";
    if (queries != nullptr) ++*queries;
  }
  return Status::OK();
}

Result<std::vector<std::string>> RunQueryLines(
    const std::string& host, int port,
    const std::vector<std::string>& lines) {
  RWDOM_ASSIGN_OR_RETURN(QueryClient client,
                         QueryClient::Connect(host, port));
  std::vector<std::string> responses;
  responses.reserve(lines.size());
  for (const std::string& line : lines) {
    RWDOM_ASSIGN_OR_RETURN(std::string response, client.Roundtrip(line));
    responses.push_back(std::move(response));
  }
  return responses;
}

}  // namespace rwdom
