#include "server/client.h"

#include <utility>

#include "util/strings.h"

namespace rwdom {

QueryClient::QueryClient(UniqueFd connection)
    : connection_(std::make_shared<UniqueFd>(std::move(connection))),
      reader_(std::make_shared<LineReader>(connection_->get())) {}

Result<QueryClient> QueryClient::Connect(const std::string& host, int port) {
  RWDOM_ASSIGN_OR_RETURN(UniqueFd connection, TcpConnect(host, port));
  QueryClient client(std::move(connection));
  // The server sends its greeting on every accepted connection, before
  // any response (even a refusal) — eat exactly one line here so
  // Roundtrip sees request/response pairs only.
  RWDOM_ASSIGN_OR_RETURN(LineReader::Outcome outcome,
                         client.reader_->ReadLine(&client.greeting_));
  if (outcome != LineReader::Outcome::kLine) {
    return Status::IoError("server closed the connection before greeting");
  }
  return client;
}

Result<std::string> QueryClient::Roundtrip(const std::string& line) {
  RWDOM_RETURN_IF_ERROR(SendAll(connection_->get(), line + "\n"));
  std::string response;
  RWDOM_ASSIGN_OR_RETURN(LineReader::Outcome outcome,
                         reader_->ReadLine(&response));
  if (outcome != LineReader::Outcome::kLine) {
    return Status::IoError("server closed the connection before responding");
  }
  return response;
}

Status StreamQueryScript(QueryClient& client, std::istream& script,
                         std::ostream& out, int64_t* queries) {
  if (queries != nullptr) *queries = 0;
  std::string line;
  while (std::getline(script, line)) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    RWDOM_ASSIGN_OR_RETURN(std::string response,
                           client.Roundtrip(std::string(trimmed)));
    out << response << "\n";
    if (queries != nullptr) ++*queries;
  }
  return Status::OK();
}

Result<std::vector<std::string>> RunQueryLines(
    const std::string& host, int port,
    const std::vector<std::string>& lines) {
  RWDOM_ASSIGN_OR_RETURN(QueryClient client,
                         QueryClient::Connect(host, port));
  std::vector<std::string> responses;
  responses.reserve(lines.size());
  for (const std::string& line : lines) {
    RWDOM_ASSIGN_OR_RETURN(std::string response, client.Roundtrip(line));
    responses.push_back(std::move(response));
  }
  return responses;
}

}  // namespace rwdom
