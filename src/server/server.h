// The long-lived TCP query server behind `rwdom serve`: many clients,
// one warm GraphRegistry of named tenants.
//
// Protocol: each connection is a bidirectional stream of '\n'-framed
// JSONL lines. Requests use the exact batch-script format,
//
//   {"command": "select", "flags": {"problem": "F2", "k": 5, "L": 4}}
//
// optionally naming a tenant with `"graph": "name"` (protocol v3;
// omitted = the default graph), and every request line yields exactly
// one JSON response line — the same line a cold
// `rwdom <command> --format=json` run prints against that substrate
// (the line executor is injected from the CLI layer, so the
// flag-parsing path is shared byte for byte). Failed requests answer
// {"error": {"code": ..., "message": ...}} and keep the connection
// open. Two admin requests are handled by the server itself:
//
//   {"command": "server_stats"}  -> cache/traffic counters; an optional
//                                   "graph" member filters the
//                                   per-graph section to one tenant
//   {"command": "shutdown"}      -> acknowledge, then graceful shutdown
//
// Concurrency: one accept thread greets, refuses and sheds; admitted
// connections are served by one of two interchangeable cores selected
// with ServerOptions::io (`serve --io=threaded|epoll`):
//
//   * threaded — a fixed pool of worker threads, each serving one
//     connection at a time to completion over blocking sockets.
//   * epoll (default on Linux) — `threads` non-blocking event-loop
//     shards (server/event_loop.h) with request pipelining and
//     per-connection backpressure.
//
// Both cores share the one GraphRegistry, whose per-tenant
// shared_mutex + single-flight caches make concurrent index builds
// safe and deduplicated — concurrent responses are bit-identical to
// cold CLI runs, and byte-identical between the two cores.
//
// Shutdown: NotifyShutdown() is async-signal-safe (a SIGINT handler may
// call it); in-flight requests finish and get their response, idle and
// queued connections are closed, then every thread is joined.
#ifndef RWDOM_SERVER_SERVER_H_
#define RWDOM_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/event_loop.h"
#include "server/protocol.h"
#include "service/graph_registry.h"
#include "service/query_context.h"
#include "service/wire.h"
#include "util/clock.h"
#include "util/socket.h"
#include "util/status.h"

namespace rwdom {

struct ServerOptions {
  /// Bind address; the loopback default keeps a dev box private —
  /// deployments behind a proxy bind "0.0.0.0" explicitly.
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 picks an ephemeral port (see QueryServer::port()).
  int threads = 4;           ///< Worker pool size (concurrent connections).
  int max_connections = 64;  ///< Open-connection cap; excess are refused
                             ///< with an {"error": ...} line.
  /// Per-request wall-clock budget, checked at dispatch boundaries via
  /// `clock`: a request found past its deadline answers a
  /// DeadlineExceeded error line (connection stays open). 0 = no limit.
  int request_timeout_ms = 0;
  /// Budget for writing one response to a slow/stalled client; past it
  /// the connection is dropped (write_timeouts counter). 0 = no limit.
  int write_timeout_ms = 30'000;
  /// Per-request-line byte cap; overlong lines answer InvalidArgument
  /// and the stream resyncs at the next newline.
  size_t max_request_bytes = LineReader::kDefaultMaxLineBytes;
  /// Accepted-but-unserved connection cap. When more than this many
  /// connections wait for a worker, new ones are shed: an Unavailable
  /// error line carrying retry_after_ms, then close. 0 = unbounded.
  int max_queue_depth = 0;
  /// The backoff hint sent in shed/refusal error bodies.
  int retry_after_ms = 250;
  /// Which serving core runs behind the accept thread (`--io`). The
  /// default is epoll on Linux, threaded elsewhere; `RWDOM_IO` in the
  /// environment overrides the default (see DefaultIoMode).
  IoMode io = DefaultIoMode();
  /// Epoll mode only: per-connection cap on buffered, unsent response
  /// bytes. Crossing it pauses reads from that connection
  /// (backpressure) until the peer drains below half the cap.
  size_t write_buffer_bytes = 256 * 1024;
  /// Deadline clock; nullptr means the real monotonic clock. Tests
  /// inject a FakeClock to expire deadlines deterministically.
  const Clock* clock = nullptr;
  /// Capability tags announced in the greeting and in `server_stats`.
  /// Callers with extra features (e.g. `serve --cache_dir`) append to
  /// the base list before constructing the server.
  std::vector<std::string> capabilities = BaseCapabilities();
};

/// One tenant's slice of the cache/traffic counters, the per-graph
/// section of the `server_stats` response.
struct GraphServeStats {
  std::string name;
  std::string substrate;  ///< Substrate kind ("graph" / "weighted_graph").
  uint64_t substrate_fingerprint = 0;
  int64_t cached_index_bytes = 0;
  int64_t index_hits = 0;
  int64_t index_builds = 0;
  int64_t index_evictions = 0;
  int64_t admission_rejections = 0;
  int64_t requests = 0;  ///< Non-admin requests dispatched to this graph.
};

/// Traffic + cache counters, the `server_stats` endpoint's numbers.
/// Cache counters aggregate over every served graph (the budget is
/// fleet-wide); `graphs` carries the per-tenant breakdown.
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_rejected = 0;
  int64_t active_connections = 0;  ///< Open right now (queued + serving).
  int64_t queries_ok = 0;
  int64_t queries_error = 0;
  // Overload / robustness counters.
  int64_t requests_shed = 0;       ///< Connections shed at the queue cap.
  int64_t deadline_exceeded = 0;   ///< Requests past --request_timeout_ms.
  int64_t oversized_requests = 0;  ///< Lines over --max_request_bytes.
  int64_t write_timeouts = 0;      ///< Responses dropped on stalled peers.
  /// Connections whose reads were paused at the write-buffer cap (epoll
  /// mode). Normal flow control, not degradation: it does not move the
  /// health latch.
  int64_t backpressure_pauses = 0;
  int64_t index_evictions = 0;     ///< Cache entries evicted under budget.
  int64_t admission_rejections = 0;  ///< Builds refused by the budget.
  /// "ok", or "degraded" when any overload/failure counter moved since
  /// the previous stats() snapshot (a read-and-reset latch: one healthy
  /// interval returns the report to "ok").
  std::string health = "ok";
  // Warm-context amortization receipt (graph loads == the number of
  // served graphs by construction: every substrate is loaded once,
  // before the server starts).
  int64_t graph_loads = 1;
  int64_t index_builds = 0;
  int64_t index_hits = 0;
  int64_t index_recovered = 0;  ///< Indexes adopted from disk snapshots.
  int64_t cached_bytes = 0;
  /// What the cached indexes would occupy in the former raw-CSR layout
  /// (graph excluded) — together with cached_index_bytes it yields the
  /// live compression ratio.
  int64_t cached_index_bytes = 0;
  int64_t cached_index_raw_bytes = 0;
  /// Persistence block, counters summed over every tenant's
  /// QueryContext::persistence(); cache_dir is the default tenant's
  /// (all zeros / empty when the server runs without --cache_dir).
  PersistenceInfo persistence;
  /// Per-tenant breakdown, one entry per served graph in name order.
  std::vector<GraphServeStats> graphs;
};

class QueryServer {
 public:
  /// Executes one validated request envelope against the resolved
  /// tenant's context and fills `response` with exactly one JSON line
  /// (no trailing newline). Injected from the CLI layer
  /// (cli/query_line.h) so the server speaks the identical flag-parsing
  /// path as batch scripts and one-shot commands. Must be thread-safe:
  /// workers call it concurrently against shared contexts.
  using LineExecutor = std::function<Status(
      const ParsedRequest& request, QueryContext& context,
      std::string* response)>;

  /// The registry must be fully built (every tenant Added) before
  /// construction and outlive the server; a default tenant is required.
  QueryServer(GraphRegistry* registry, LineExecutor executor,
              ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens and spawns the accept + worker threads. Call once.
  Status Start();

  /// The actually bound port (== options.port unless that was 0).
  int port() const { return port_; }

  /// Begins a graceful shutdown. Async-signal-safe: only writes one
  /// byte to an internal pipe, so SIGINT handlers may call it.
  void NotifyShutdown();

  /// NotifyShutdown + wait for every thread to finish. Idempotent.
  void Shutdown();

  /// Blocks until the server shut down (admin request, NotifyShutdown,
  /// or a fatal accept error) and every thread is joined.
  void Wait();

  ServerStats stats() const;

 private:
  void BeginShutdown();
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(UniqueFd connection);
  /// One request line -> one response line (admin or via executor_).
  /// `deadline` is the request's budget (started when its line arrived);
  /// a request past it answers DeadlineExceeded instead of executing.
  std::string HandleLine(const std::string& line, const Deadline& deadline);
  /// `graph_filter` non-null narrows the per-graph section to one
  /// tenant; the section is emitted only then or when serving more
  /// than one graph (v2 single-graph responses stay byte-identical).
  std::string StatsResponseLine(const std::string* graph_filter) const;
  const Clock& clock() const {
    return options_.clock != nullptr ? *options_.clock : *SystemClock::Get();
  }
  void Join();

  GraphRegistry* const registry_;
  const LineExecutor executor_;
  const ServerOptions options_;
  /// The protocol-v2 hello, built once at construction and sent on every
  /// accepted connection before anything else.
  std::string greeting_line_;

  UniqueFd listener_;
  WakePipe wake_;
  int port_ = 0;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;  ///< Threaded mode only.
  /// Epoll mode only: the event-loop shards; the accept thread deals
  /// admitted connections round-robin. unique_ptr because shards hold
  /// a std::thread and self-referencing lambdas — they must not move.
  std::vector<std::unique_ptr<EventLoopShard>> shards_;
  size_t next_shard_ = 0;  ///< Accept thread only.

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<UniqueFd> pending_;

  std::mutex lifecycle_mutex_;
  std::condition_variable stopped_cv_;
  bool started_ = false;
  bool stopped_ = false;
  std::mutex join_mutex_;  ///< Guards joined_; see Join().
  bool joined_ = false;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_rejected_{0};
  std::atomic<int64_t> active_connections_{0};
  std::atomic<int64_t> queries_ok_{0};
  std::atomic<int64_t> queries_error_{0};
  std::atomic<int64_t> requests_shed_{0};
  std::atomic<int64_t> deadline_exceeded_{0};
  std::atomic<int64_t> oversized_requests_{0};
  std::atomic<int64_t> write_timeouts_{0};
  std::atomic<int64_t> backpressure_pauses_{0};
  /// Per-graph dispatched-request counters, keyed by registered name.
  /// Fully populated at construction (the registry is immutable by
  /// then), so workers bump entries lock-free.
  std::map<std::string, std::atomic<int64_t>, std::less<>> graph_requests_;
  /// Sum of the degradation counters at the previous stats() call — the
  /// health latch's memory (mutable: reading health advances it).
  mutable std::atomic<int64_t> last_degradation_sum_{0};
};

}  // namespace rwdom

#endif  // RWDOM_SERVER_SERVER_H_
