// The long-lived TCP query server behind `rwdom serve`: many clients,
// one warm QueryContext.
//
// Protocol: each connection is a bidirectional stream of '\n'-framed
// JSONL lines. Requests use the exact batch-script format,
//
//   {"command": "select", "flags": {"problem": "F2", "k": 5, "L": 4}}
//
// and every request line yields exactly one JSON response line — the
// same line a cold `rwdom <command> --format=json` run prints (the
// line executor is injected from the CLI layer, so the flag-parsing
// path is shared byte for byte). Failed requests answer
// {"error": {"code": ..., "message": ...}} and keep the connection
// open. Two admin requests are handled by the server itself:
//
//   {"command": "server_stats"}  -> cache/traffic counters
//   {"command": "shutdown"}      -> acknowledge, then graceful shutdown
//
// Concurrency: one accept thread feeds a fixed pool of worker threads;
// each worker serves one connection at a time to completion. All workers
// share the one QueryContext, whose shared_mutex + single-flight cache
// makes concurrent index builds safe and deduplicated — concurrent
// responses are bit-identical to cold CLI runs.
//
// Shutdown: NotifyShutdown() is async-signal-safe (a SIGINT handler may
// call it); in-flight requests finish and get their response, idle and
// queued connections are closed, then every thread is joined.
#ifndef RWDOM_SERVER_SERVER_H_
#define RWDOM_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "service/query_context.h"
#include "util/socket.h"
#include "util/status.h"

namespace rwdom {

struct ServerOptions {
  /// Bind address; the loopback default keeps a dev box private —
  /// deployments behind a proxy bind "0.0.0.0" explicitly.
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 picks an ephemeral port (see QueryServer::port()).
  int threads = 4;           ///< Worker pool size (concurrent connections).
  int max_connections = 64;  ///< Open-connection cap; excess are refused
                             ///< with an {"error": ...} line.
  /// Capability tags announced in the greeting and in `server_stats`.
  /// Callers with extra features (e.g. `serve --cache_dir`) append to
  /// the base list before constructing the server.
  std::vector<std::string> capabilities = BaseCapabilities();
};

/// Traffic + cache counters, the `server_stats` endpoint's numbers.
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_rejected = 0;
  int64_t active_connections = 0;  ///< Open right now (queued + serving).
  int64_t queries_ok = 0;
  int64_t queries_error = 0;
  // Warm-context amortization receipt (graph loads is 1 by construction:
  // the substrate is loaded once, before the server starts).
  int64_t graph_loads = 1;
  int64_t index_builds = 0;
  int64_t index_hits = 0;
  int64_t index_recovered = 0;  ///< Indexes adopted from disk snapshots.
  int64_t cached_bytes = 0;
  /// Persistence block, mirrored from QueryContext::persistence() (all
  /// zeros / empty when the server runs without --cache_dir).
  PersistenceInfo persistence;
};

class QueryServer {
 public:
  /// Executes one already-trimmed request line against the warm context
  /// and fills `response` with exactly one JSON line (no trailing
  /// newline). Injected from the CLI layer (cli/query_line.h) so the
  /// server speaks the identical flag-parsing path as batch scripts and
  /// one-shot commands. Must be thread-safe: workers call it
  /// concurrently against the shared context.
  using LineExecutor =
      std::function<Status(const std::string& line, std::string* response)>;

  QueryServer(QueryContext* context, LineExecutor executor,
              ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens and spawns the accept + worker threads. Call once.
  Status Start();

  /// The actually bound port (== options.port unless that was 0).
  int port() const { return port_; }

  /// Begins a graceful shutdown. Async-signal-safe: only writes one
  /// byte to an internal pipe, so SIGINT handlers may call it.
  void NotifyShutdown();

  /// NotifyShutdown + wait for every thread to finish. Idempotent.
  void Shutdown();

  /// Blocks until the server shut down (admin request, NotifyShutdown,
  /// or a fatal accept error) and every thread is joined.
  void Wait();

  ServerStats stats() const;

 private:
  void BeginShutdown();
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(UniqueFd connection);
  /// One request line -> one response line (admin or via executor_).
  std::string HandleLine(const std::string& line);
  std::string StatsResponseLine() const;
  void Join();

  QueryContext* const context_;
  const LineExecutor executor_;
  const ServerOptions options_;
  /// The protocol-v2 hello, built once at construction and sent on every
  /// accepted connection before anything else.
  std::string greeting_line_;

  UniqueFd listener_;
  WakePipe wake_;
  int port_ = 0;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<UniqueFd> pending_;

  std::mutex lifecycle_mutex_;
  std::condition_variable stopped_cv_;
  bool started_ = false;
  bool stopped_ = false;
  std::mutex join_mutex_;  ///< Guards joined_; see Join().
  bool joined_ = false;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_rejected_{0};
  std::atomic<int64_t> active_connections_{0};
  std::atomic<int64_t> queries_ok_{0};
  std::atomic<int64_t> queries_error_{0};
};

}  // namespace rwdom

#endif  // RWDOM_SERVER_SERVER_H_
