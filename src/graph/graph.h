// Immutable undirected graph in Compressed Sparse Row (CSR) form.
//
// This is the substrate every algorithm in rwdom runs on: random walks,
// hitting-time dynamic programs, and the inverted walk index all reduce to
// linear scans over the adjacency arrays, so the representation is a pair of
// flat vectors (offsets + neighbor lists), 32-bit node ids, and no per-node
// allocation.
//
// Conventions:
//  * Nodes are dense ids [0, num_nodes()).
//  * The graph is simple (no self-loops, no parallel edges) and undirected:
//    each edge {u, v} appears in both adjacency lists.
//  * Adjacency lists are sorted ascending, enabling O(log d) HasEdge.
//  * Isolated vertices (degree 0) are permitted.
#ifndef RWDOM_GRAPH_GRAPH_H_
#define RWDOM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace rwdom {

/// Dense node identifier. 32-bit: the paper's largest graph is 1M nodes.
using NodeId = int32_t;

/// Invalid / "no node" sentinel.
inline constexpr NodeId kInvalidNode = -1;

class GraphBuilder;

/// Immutable CSR undirected graph. Construct through GraphBuilder or the
/// generators in graph/generators.h.
class Graph {
 public:
  /// An empty graph (0 nodes).
  Graph() : offsets_{0} {}

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.size() - 1); }

  /// Number of undirected edges m (each {u,v} counted once).
  int64_t num_edges() const {
    return static_cast<int64_t>(neighbors_.size()) / 2;
  }

  /// Degree of `u`.
  int32_t degree(NodeId u) const {
    RWDOM_DCHECK(IsValidNode(u));
    return static_cast<int32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Sorted neighbor list of `u`.
  std::span<const NodeId> neighbors(NodeId u) const {
    RWDOM_DCHECK(IsValidNode(u));
    return {neighbors_.data() + offsets_[u],
            static_cast<size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// True for ids in [0, num_nodes()).
  bool IsValidNode(NodeId u) const { return u >= 0 && u < num_nodes(); }

  /// O(log degree(u)) membership test.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Largest degree in the graph (0 for the empty graph).
  int32_t max_degree() const;

  /// All edges as (u, v) pairs with u < v, in ascending order.
  std::vector<std::pair<NodeId, NodeId>> Edges() const;

  /// Approximate heap footprint in bytes.
  int64_t MemoryUsageBytes() const {
    return static_cast<int64_t>(offsets_.capacity() * sizeof(int64_t) +
                                neighbors_.capacity() * sizeof(NodeId));
  }

 private:
  friend class GraphBuilder;

  Graph(std::vector<int64_t> offsets, std::vector<NodeId> neighbors)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {}

  // offsets_[u]..offsets_[u+1] indexes neighbors_; offsets_.size() == n + 1.
  std::vector<int64_t> offsets_;
  std::vector<NodeId> neighbors_;
};

}  // namespace rwdom

#endif  // RWDOM_GRAPH_GRAPH_H_
