#include "graph/graph_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"
#include "util/strings.h"

namespace rwdom {

Result<EdgeRecordSummary> ForEachEdgeRecord(
    const std::string& text, WeightColumnMode mode,
    const std::function<void(const EdgeRecord&)>& visit) {
  EdgeRecordSummary summary;
  IdRemapper remap;
  bool saw_annotation = false;
  std::istringstream in(text);
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#' || stripped[0] == '%') continue;
    std::vector<std::string_view> fields = SplitWhitespace(stripped);
    if (fields.size() < 2) {
      return Status::Corruption(
          StrFormat("line %lld: expected 'u v [w]', got '%s'",
                    static_cast<long long>(line_no),
                    std::string(stripped).c_str()));
    }
    auto u_result = ParseInt64(fields[0]);
    auto v_result = ParseInt64(fields[1]);
    if (!u_result.ok() || !v_result.ok()) {
      return Status::Corruption(
          StrFormat("line %lld: non-integer endpoint",
                    static_cast<long long>(line_no)));
    }
    double weight = 1.0;
    if (mode != WeightColumnMode::kIgnore && fields.size() >= 3) {
      auto w_result = ParseDouble(fields[2]);
      if (w_result.ok() && *w_result > 0.0 && std::isfinite(*w_result)) {
        weight = *w_result;
        summary.saw_weights = true;
      } else if (mode == WeightColumnMode::kRequire || w_result.ok()) {
        // A numeric third column that is non-positive or non-finite was
        // clearly meant as a weight — never swallow it as 1.0.
        return Status::Corruption(
            StrFormat("line %lld: weight must be positive and finite",
                      static_cast<long long>(line_no)));
      } else {
        // kAuto: a non-numeric third column is an annotation.
        saw_annotation = true;
      }
    }
    NodeId u = remap.Map(*u_result);
    NodeId v = remap.Map(*v_result);
    if (u == v) continue;  // Self-loops are dropped everywhere in rwdom.
    visit({u, v, weight});
  }
  if (summary.saw_weights && saw_annotation) {
    // Half the lines parsed as weights and half did not: interpreting the
    // mix silently would corrupt the distribution. Make the caller decide.
    return Status::Corruption(
        "third column is weights on some lines and non-numeric on others; "
        "load with an explicit weight mode (--weighted=yes or "
        "--weighted=no)");
  }
  summary.original_ids = std::move(remap).TakeOriginals();
  return summary;
}

Result<EdgeRecordList> ParseEdgeRecords(const std::string& text,
                                        WeightColumnMode mode) {
  EdgeRecordList result;
  RWDOM_ASSIGN_OR_RETURN(
      EdgeRecordSummary summary,
      ForEachEdgeRecord(text, mode, [&](const EdgeRecord& record) {
        result.records.push_back(record);
      }));
  result.original_ids = std::move(summary.original_ids);
  result.saw_weights = summary.saw_weights;
  return result;
}

Result<LoadedGraph> ParseEdgeList(const std::string& text) {
  // Streaming: records feed the builder directly, so peak memory is the
  // builder's edge store, not a materialized record list.
  GraphBuilder builder(0, SelfLoopPolicy::kDrop);
  RWDOM_ASSIGN_OR_RETURN(
      EdgeRecordSummary summary,
      ForEachEdgeRecord(text, WeightColumnMode::kIgnore,
                        [&](const EdgeRecord& record) {
                          builder.AddEdgeAutoGrow(record.u, record.v);
                        }));
  // Nodes that only ever appeared in self-loop lines still count: grow to
  // the full remapped universe.
  if (!summary.original_ids.empty()) {
    builder.GrowToInclude(
        static_cast<NodeId>(summary.original_ids.size()) - 1);
  }
  RWDOM_ASSIGN_OR_RETURN(Graph graph, std::move(builder).Build());
  return LoadedGraph{std::move(graph), std::move(summary.original_ids)};
}

Result<LoadedGraph> LoadEdgeList(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IoError("read failed: " + path);
  return ParseEdgeList(buffer.str());
}

namespace {

Status SaveEdgeListImpl(const Graph& graph,
                        const std::vector<int64_t>* original_ids,
                        const std::string& path,
                        const std::string& comment) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file << "# rwdom edge list";
  if (!comment.empty()) file << ": " << comment;
  file << "\n# nodes " << graph.num_nodes() << " edges " << graph.num_edges()
       << "\n";
  auto emit = [&](NodeId u) -> int64_t {
    return original_ids == nullptr
               ? static_cast<int64_t>(u)
               : (*original_ids)[static_cast<size_t>(u)];
  };
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.neighbors(u)) {
      if (u < v) file << emit(u) << "\t" << emit(v) << "\n";
    }
  }
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace

Status SaveEdgeList(const Graph& graph, const std::string& path,
                    const std::string& comment) {
  return SaveEdgeListImpl(graph, nullptr, path, comment);
}

Status SaveEdgeListWithOriginalIds(const Graph& graph,
                                   const std::vector<int64_t>& original_ids,
                                   const std::string& path,
                                   const std::string& comment) {
  if (static_cast<NodeId>(original_ids.size()) != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("original_ids has %zu entries for a graph of %d nodes",
                  original_ids.size(), graph.num_nodes()));
  }
  return SaveEdgeListImpl(graph, &original_ids, path, comment);
}

}  // namespace rwdom
