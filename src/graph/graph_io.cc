#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"
#include "util/strings.h"

namespace rwdom {
namespace {

// Remaps sparse original ids to dense ids in first-seen order.
class IdRemapper {
 public:
  NodeId Map(int64_t original) {
    auto [it, inserted] =
        dense_.try_emplace(original, static_cast<NodeId>(originals_.size()));
    if (inserted) originals_.push_back(original);
    return it->second;
  }

  std::vector<int64_t> TakeOriginals() && { return std::move(originals_); }
  size_t size() const { return originals_.size(); }

 private:
  std::unordered_map<int64_t, NodeId> dense_;
  std::vector<int64_t> originals_;
};

}  // namespace

Result<LoadedGraph> ParseEdgeList(const std::string& text) {
  IdRemapper remap;
  GraphBuilder builder(0, SelfLoopPolicy::kDrop);
  std::istringstream in(text);
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#' || stripped[0] == '%') continue;
    std::vector<std::string_view> fields = SplitWhitespace(stripped);
    if (fields.size() < 2) {
      return Status::Corruption(
          StrFormat("line %lld: expected 'u v', got '%s'",
                    static_cast<long long>(line_no),
                    std::string(stripped).c_str()));
    }
    auto u_result = ParseInt64(fields[0]);
    auto v_result = ParseInt64(fields[1]);
    if (!u_result.ok() || !v_result.ok()) {
      return Status::Corruption(
          StrFormat("line %lld: non-integer endpoint",
                    static_cast<long long>(line_no)));
    }
    NodeId u = remap.Map(*u_result);
    NodeId v = remap.Map(*v_result);
    builder.AddEdgeAutoGrow(u, v);
  }
  RWDOM_ASSIGN_OR_RETURN(Graph graph, std::move(builder).Build());
  return LoadedGraph{std::move(graph), std::move(remap).TakeOriginals()};
}

Result<LoadedGraph> LoadEdgeList(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IoError("read failed: " + path);
  return ParseEdgeList(buffer.str());
}

Status SaveEdgeList(const Graph& graph, const std::string& path,
                    const std::string& comment) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file << "# rwdom edge list";
  if (!comment.empty()) file << ": " << comment;
  file << "\n# nodes " << graph.num_nodes() << " edges " << graph.num_edges()
       << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.neighbors(u)) {
      if (u < v) file << u << "\t" << v << "\n";
    }
  }
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace rwdom
