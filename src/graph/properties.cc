#include "graph/properties.h"

#include <algorithm>
#include <queue>

#include "util/strings.h"

namespace rwdom {

std::string GraphStats::ToString() const {
  return StrFormat(
      "n=%d m=%lld avg_deg=%.2f deg=[%d,%d] isolated=%d components=%d "
      "largest=%d",
      num_nodes, static_cast<long long>(num_edges), avg_degree, min_degree,
      max_degree, num_isolated, num_components, largest_component_size);
}

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  if (graph.num_nodes() == 0) return stats;
  stats.avg_degree = 2.0 * static_cast<double>(stats.num_edges) /
                     static_cast<double>(stats.num_nodes);
  stats.min_degree = graph.degree(0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    int32_t d = graph.degree(u);
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) ++stats.num_isolated;
  }
  std::vector<int32_t> component = ConnectedComponents(graph);
  std::vector<NodeId> sizes;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    size_t c = static_cast<size_t>(component[u]);
    if (c >= sizes.size()) sizes.resize(c + 1, 0);
    ++sizes[c];
  }
  stats.num_components = static_cast<int32_t>(sizes.size());
  stats.largest_component_size =
      sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return stats;
}

std::vector<int32_t> ConnectedComponents(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<int32_t> component(static_cast<size_t>(n), -1);
  int32_t next_id = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (component[start] != -1) continue;
    component[start] = next_id;
    stack.push_back(start);
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : graph.neighbors(u)) {
        if (component[v] == -1) {
          component[v] = next_id;
          stack.push_back(v);
        }
      }
    }
    ++next_id;
  }
  return component;
}

std::vector<int32_t> BfsDistances(const Graph& graph, NodeId source) {
  RWDOM_CHECK(graph.IsValidNode(source));
  std::vector<int32_t> dist(static_cast<size_t>(graph.num_nodes()), -1);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : graph.neighbors(u)) {
      if (dist[v] == -1) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

bool IsConnected(const Graph& graph) {
  if (graph.num_nodes() == 0) return true;
  std::vector<int32_t> dist = BfsDistances(graph, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](int32_t d) { return d == -1; });
}

std::vector<int32_t> Degrees(const Graph& graph) {
  std::vector<int32_t> degrees(static_cast<size_t>(graph.num_nodes()));
  for (NodeId u = 0; u < graph.num_nodes(); ++u) degrees[u] = graph.degree(u);
  return degrees;
}

}  // namespace rwdom
