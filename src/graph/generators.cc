#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "graph/graph_builder.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rwdom {
namespace {

// Packs an undirected edge into a set key (canonical order).
uint64_t EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

int64_t MaxEdges(NodeId n) {
  return static_cast<int64_t>(n) * (static_cast<int64_t>(n) - 1) / 2;
}

}  // namespace

Result<Graph> GenerateBarabasiAlbert(NodeId n, int32_t attach_edges,
                                     uint64_t seed) {
  if (attach_edges < 1) {
    return Status::InvalidArgument("attach_edges must be >= 1");
  }
  if (n <= attach_edges) {
    return Status::InvalidArgument(
        StrFormat("need n > attach_edges, got n=%d attach=%d", n,
                  attach_edges));
  }
  Rng rng(seed);
  GraphBuilder builder(n);
  // Seed clique on attach_edges + 1 nodes.
  const NodeId clique = attach_edges + 1;
  builder.ReserveEdges(static_cast<int64_t>(clique) * (clique - 1) / 2 +
                       static_cast<int64_t>(n - clique) * attach_edges);
  // endpoint_pool holds each node once per incident edge endpoint, so a
  // uniform draw from it is degree-proportional sampling.
  std::vector<NodeId> endpoint_pool;
  endpoint_pool.reserve(static_cast<size_t>(2) *
                        (static_cast<size_t>(n) *
                         static_cast<size_t>(attach_edges)));
  for (NodeId u = 0; u < clique; ++u) {
    for (NodeId v = u + 1; v < clique; ++v) {
      builder.AddEdge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  std::vector<NodeId> targets;
  targets.reserve(static_cast<size_t>(attach_edges));
  for (NodeId w = clique; w < n; ++w) {
    targets.clear();
    // Rejection-sample `attach_edges` distinct degree-proportional targets.
    while (targets.size() < static_cast<size_t>(attach_edges)) {
      NodeId candidate =
          endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      if (std::find(targets.begin(), targets.end(), candidate) ==
          targets.end()) {
        targets.push_back(candidate);
      }
    }
    for (NodeId t : targets) {
      builder.AddEdge(w, t);
      endpoint_pool.push_back(w);
      endpoint_pool.push_back(t);
    }
  }
  return std::move(builder).Build();
}

Result<Graph> GeneratePowerLawWithSize(NodeId n, int64_t m, uint64_t seed) {
  if (n < 2) return Status::InvalidArgument("need n >= 2");
  if (m < 0 || m > MaxEdges(n)) {
    return Status::InvalidArgument(
        StrFormat("m=%lld infeasible for n=%d", static_cast<long long>(m), n));
  }
  Rng rng(seed);
  std::unordered_set<uint64_t> edge_set;
  edge_set.reserve(static_cast<size_t>(m) * 2);
  GraphBuilder builder(n);
  builder.ReserveEdges(m);
  auto add_edge = [&](NodeId u, NodeId v) {
    if (u == v) return false;
    if (!edge_set.insert(EdgeKey(u, v)).second) return false;
    builder.AddEdge(u, v);
    return true;
  };

  const int32_t attach = static_cast<int32_t>(
      std::max<int64_t>(1, m / std::max<NodeId>(n, 1)));
  // Preferential-attachment core (produces <= m edges; see header).
  if (m >= n && n > attach) {
    const NodeId clique = attach + 1;
    std::vector<NodeId> endpoint_pool;
    for (NodeId u = 0; u < clique; ++u) {
      for (NodeId v = u + 1; v < clique; ++v) {
        if (static_cast<int64_t>(edge_set.size()) >= m) break;
        add_edge(u, v);
        endpoint_pool.push_back(u);
        endpoint_pool.push_back(v);
      }
    }
    std::vector<NodeId> targets;
    for (NodeId w = clique;
         w < n && static_cast<int64_t>(edge_set.size()) + attach <= m; ++w) {
      targets.clear();
      while (targets.size() < static_cast<size_t>(attach)) {
        NodeId candidate =
            endpoint_pool[rng.NextBounded(endpoint_pool.size())];
        if (std::find(targets.begin(), targets.end(), candidate) ==
            targets.end()) {
          targets.push_back(candidate);
        }
      }
      for (NodeId t : targets) {
        add_edge(w, t);
        endpoint_pool.push_back(w);
        endpoint_pool.push_back(t);
      }
    }
  }
  // Uniform top-up to exactly m edges.
  while (static_cast<int64_t>(edge_set.size()) < m) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(n)));
    NodeId v = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(n)));
    add_edge(u, v);
  }
  return std::move(builder).Build();
}

Result<Graph> GeneratePowerLawCommunity(NodeId n, int64_t m,
                                        int32_t num_communities,
                                        double mixing, uint64_t seed) {
  if (n < 2) return Status::InvalidArgument("need n >= 2");
  if (m < 0 || m > MaxEdges(n)) {
    return Status::InvalidArgument(
        StrFormat("m=%lld infeasible for n=%d", static_cast<long long>(m), n));
  }
  if (num_communities < 1) {
    return Status::InvalidArgument("need num_communities >= 1");
  }
  if (mixing < 0.0 || mixing > 1.0) {
    return Status::InvalidArgument("mixing must be in [0,1]");
  }
  num_communities = static_cast<int32_t>(
      std::min<int64_t>(num_communities, n / 2 > 0 ? n / 2 : 1));

  Rng rng(seed);
  // Zipf-ish community sizes (exponent 0.7), then fix rounding drift.
  std::vector<NodeId> sizes(static_cast<size_t>(num_communities));
  {
    std::vector<double> weights(static_cast<size_t>(num_communities));
    double total = 0.0;
    for (int32_t c = 0; c < num_communities; ++c) {
      weights[static_cast<size_t>(c)] =
          std::pow(static_cast<double>(c + 1), -0.7);
      total += weights[static_cast<size_t>(c)];
    }
    NodeId assigned = 0;
    for (int32_t c = 0; c < num_communities; ++c) {
      sizes[static_cast<size_t>(c)] = std::max<NodeId>(
          2, static_cast<NodeId>(weights[static_cast<size_t>(c)] / total *
                                 static_cast<double>(n)));
      assigned += sizes[static_cast<size_t>(c)];
    }
    // Drift correction: push the difference onto the largest community.
    sizes[0] += n - assigned;
    if (sizes[0] < 2) return Status::InvalidArgument("communities too small");
  }
  // Node ranges per community: community c owns [starts[c], starts[c+1]).
  std::vector<NodeId> starts(static_cast<size_t>(num_communities) + 1, 0);
  for (int32_t c = 0; c < num_communities; ++c) {
    starts[static_cast<size_t>(c) + 1] =
        starts[static_cast<size_t>(c)] + sizes[static_cast<size_t>(c)];
  }

  std::unordered_set<uint64_t> edge_set;
  edge_set.reserve(static_cast<size_t>(m) * 2);
  GraphBuilder builder(n);
  builder.ReserveEdges(m);
  auto add_edge = [&](NodeId u, NodeId v) {
    if (u == v) return false;
    if (!edge_set.insert(EdgeKey(u, v)).second) return false;
    builder.AddEdge(u, v);
    return true;
  };

  // Intra-community preferential attachment, budget proportional to size.
  const int64_t intra_budget =
      static_cast<int64_t>((1.0 - mixing) * static_cast<double>(m));
  std::vector<NodeId> endpoint_pool;
  std::vector<NodeId> targets;
  for (int32_t c = 0; c < num_communities; ++c) {
    const NodeId base = starts[static_cast<size_t>(c)];
    const NodeId size = sizes[static_cast<size_t>(c)];
    const int64_t budget =
        intra_budget * size / std::max<NodeId>(n, 1);
    const int32_t attach = static_cast<int32_t>(std::min<int64_t>(
        std::max<int64_t>(1, budget / std::max<NodeId>(size, 1)),
        size - 1));
    endpoint_pool.clear();
    const NodeId clique = std::min<NodeId>(attach + 1, size);
    for (NodeId u = 0; u < clique; ++u) {
      for (NodeId v = u + 1; v < clique; ++v) {
        add_edge(base + u, base + v);
        endpoint_pool.push_back(base + u);
        endpoint_pool.push_back(base + v);
      }
    }
    for (NodeId w = clique; w < size; ++w) {
      targets.clear();
      while (targets.size() < static_cast<size_t>(attach)) {
        NodeId candidate =
            endpoint_pool[rng.NextBounded(endpoint_pool.size())];
        if (std::find(targets.begin(), targets.end(), candidate) ==
            targets.end()) {
          targets.push_back(candidate);
        }
      }
      for (NodeId t : targets) {
        add_edge(base + w, t);
        endpoint_pool.push_back(base + w);
        endpoint_pool.push_back(t);
      }
      if (static_cast<int64_t>(edge_set.size()) >= m) break;
    }
    if (static_cast<int64_t>(edge_set.size()) >= m) break;
  }

  // Cross-community (and top-up) edges until exactly m.
  auto community_of = [&](NodeId u) {
    // Binary search over starts.
    int32_t lo = 0, hi = num_communities - 1;
    while (lo < hi) {
      int32_t mid = (lo + hi + 1) / 2;
      if (starts[static_cast<size_t>(mid)] <= u) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  };
  int64_t stall_guard = 0;
  while (static_cast<int64_t>(edge_set.size()) < m) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(n)));
    NodeId v = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(n)));
    // Prefer cross-community pairs while the mixing budget lasts, but never
    // stall: after many rejections accept any non-duplicate pair.
    if (num_communities > 1 && stall_guard < 64 &&
        community_of(u) == community_of(v)) {
      ++stall_guard;
      continue;
    }
    if (add_edge(u, v)) stall_guard = 0;
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateErdosRenyiGnm(NodeId n, int64_t m, uint64_t seed) {
  if (n < 0) return Status::InvalidArgument("need n >= 0");
  if (m < 0 || m > MaxEdges(n)) {
    return Status::InvalidArgument(
        StrFormat("m=%lld infeasible for n=%d", static_cast<long long>(m), n));
  }
  Rng rng(seed);
  std::unordered_set<uint64_t> edge_set;
  edge_set.reserve(static_cast<size_t>(m) * 2);
  GraphBuilder builder(n);
  builder.ReserveEdges(m);
  while (static_cast<int64_t>(edge_set.size()) < m) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(n)));
    NodeId v = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(n)));
    if (u == v) continue;
    if (edge_set.insert(EdgeKey(u, v)).second) builder.AddEdge(u, v);
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateErdosRenyiGnp(NodeId n, double p, uint64_t seed) {
  if (n < 0) return Status::InvalidArgument("need n >= 0");
  if (p < 0.0 || p > 1.0) return Status::InvalidArgument("p must be in [0,1]");
  Rng rng(seed);
  GraphBuilder builder(n);
  builder.ReserveEdges(
      static_cast<int64_t>(p * static_cast<double>(MaxEdges(n))));
  if (p > 0.0) {
    // Geometric skipping over the upper-triangular pair enumeration.
    const double log1mp = (p < 1.0) ? std::log1p(-p) : 0.0;
    int64_t idx = -1;
    const int64_t total = MaxEdges(n);
    while (true) {
      if (p >= 1.0) {
        ++idx;
      } else {
        double r = rng.NextDouble();
        // Skip ~Geometric(p) pairs.
        idx += 1 + static_cast<int64_t>(std::floor(std::log1p(-r) / log1mp));
      }
      if (idx >= total) break;
      // Invert pair index -> (u, v).
      NodeId u = 0;
      int64_t rem = idx;
      int64_t row = n - 1;
      while (rem >= row) {
        rem -= row;
        --row;
        ++u;
      }
      NodeId v = static_cast<NodeId>(u + 1 + rem);
      builder.AddEdge(u, v);
      if (p >= 1.0 && idx + 1 >= total) break;
    }
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateWattsStrogatz(NodeId n, int32_t k, double beta,
                                    uint64_t seed) {
  if (k < 1) return Status::InvalidArgument("need k >= 1");
  if (2 * k >= n) return Status::InvalidArgument("need 2k < n");
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("beta must be in [0,1]");
  }
  Rng rng(seed);
  std::unordered_set<uint64_t> edge_set;
  // Ring lattice.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (int32_t j = 1; j <= k; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      edges.emplace_back(u, v);
      edge_set.insert(EdgeKey(u, v));
    }
  }
  // Rewire each lattice edge's far endpoint with probability beta.
  for (auto& [u, v] : edges) {
    if (!rng.NextBernoulli(beta)) continue;
    // Try a bounded number of times; degenerate dense cases keep the edge.
    for (int attempt = 0; attempt < 32; ++attempt) {
      NodeId w =
          static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(n)));
      if (w == u || w == v) continue;
      if (edge_set.count(EdgeKey(u, w)) != 0) continue;
      edge_set.erase(EdgeKey(u, v));
      edge_set.insert(EdgeKey(u, w));
      v = w;
      break;
    }
  }
  GraphBuilder builder(n);
  builder.ReserveEdges(static_cast<int64_t>(edges.size()));
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return std::move(builder).Build();
}

Result<Graph> GenerateChungLu(NodeId n, double gamma, double avg_degree,
                              uint64_t seed) {
  if (n < 1) return Status::InvalidArgument("need n >= 1");
  if (gamma <= 2.0) {
    return Status::InvalidArgument("need gamma > 2 for finite mean degree");
  }
  if (avg_degree <= 0.0) {
    return Status::InvalidArgument("avg_degree must be positive");
  }
  // Weights w_i ~ (i + i0)^{-1/(gamma-1)}, scaled to hit the target mean.
  const double alpha = 1.0 / (gamma - 1.0);
  std::vector<double> weights(static_cast<size_t>(n));
  double total = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    weights[static_cast<size_t>(i)] = std::pow(static_cast<double>(i) + 1.0,
                                               -alpha);
    total += weights[static_cast<size_t>(i)];
  }
  const double scale = avg_degree * static_cast<double>(n) / total;
  for (double& w : weights) w *= scale;
  const double weight_sum = avg_degree * static_cast<double>(n);

  // Weights are already sorted descending (w decreasing in i), as the
  // Miller–Hagberg skipping sampler requires.
  Rng rng(seed);
  GraphBuilder builder(n);
  builder.ReserveEdges(
      static_cast<int64_t>(avg_degree * static_cast<double>(n) / 2.0));
  for (NodeId i = 0; i + 1 < n; ++i) {
    NodeId j = i + 1;
    double p = std::min(
        1.0, weights[static_cast<size_t>(i)] *
                 weights[static_cast<size_t>(j)] / weight_sum);
    while (j < n && p > 0.0) {
      if (p < 1.0) {
        double r = rng.NextDouble();
        j += static_cast<NodeId>(
            std::floor(std::log1p(-r) / std::log1p(-p)));
      }
      if (j < n) {
        double q = std::min(
            1.0, weights[static_cast<size_t>(i)] *
                     weights[static_cast<size_t>(j)] / weight_sum);
        if (rng.NextDouble() < q / p) builder.AddEdge(i, j);
        p = q;
        ++j;
      }
    }
  }
  return std::move(builder).Build();
}

Graph GeneratePath(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u + 1 < n; ++u) builder.AddEdge(u, u + 1);
  return std::move(builder).BuildOrDie();
}

Graph GenerateCycle(NodeId n) {
  RWDOM_CHECK_GE(n, 3);
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    builder.AddEdge(u, static_cast<NodeId>((u + 1) % n));
  }
  return std::move(builder).BuildOrDie();
}

Graph GenerateStar(NodeId n) {
  RWDOM_CHECK_GE(n, 1);
  GraphBuilder builder(n);
  for (NodeId u = 1; u < n; ++u) builder.AddEdge(0, u);
  return std::move(builder).BuildOrDie();
}

Graph GenerateComplete(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  }
  return std::move(builder).BuildOrDie();
}

Graph GenerateGrid(NodeId rows, NodeId cols) {
  RWDOM_CHECK_GE(rows, 1);
  RWDOM_CHECK_GE(cols, 1);
  GraphBuilder builder(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(builder).BuildOrDie();
}

Graph GenerateTwoCliquesBridge(NodeId clique_size) {
  RWDOM_CHECK_GE(clique_size, 2);
  GraphBuilder builder(2 * clique_size);
  for (NodeId base : {NodeId{0}, clique_size}) {
    for (NodeId u = 0; u < clique_size; ++u) {
      for (NodeId v = u + 1; v < clique_size; ++v) {
        builder.AddEdge(base + u, base + v);
      }
    }
  }
  builder.AddEdge(0, clique_size);
  return std::move(builder).BuildOrDie();
}

Graph GeneratePaperFigure1() {
  // Fig. 1, nodes v1..v8 -> 0..7. Edge set recovered from the example walks
  // and the figure: all walks in Example 3.1 are valid paths on this graph.
  GraphBuilder builder(8);
  builder.AddEdge(0, 1);  // v1 - v2
  builder.AddEdge(0, 5);  // v1 - v6
  builder.AddEdge(1, 2);  // v2 - v3
  builder.AddEdge(1, 4);  // v2 - v5
  builder.AddEdge(1, 5);  // v2 - v6
  builder.AddEdge(2, 4);  // v3 - v5
  builder.AddEdge(3, 6);  // v4 - v7
  builder.AddEdge(4, 6);  // v5 - v7
  builder.AddEdge(5, 6);  // v6 - v7
  builder.AddEdge(6, 7);  // v7 - v8
  return std::move(builder).BuildOrDie();
}

}  // namespace rwdom
