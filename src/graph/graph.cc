#include "graph/graph.h"

#include <algorithm>

namespace rwdom {

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (!IsValidNode(u) || !IsValidNode(v)) return false;
  auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

int32_t Graph::max_degree() const {
  int32_t best = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) best = std::max(best, degree(u));
  return best;
}

std::vector<std::pair<NodeId, NodeId>> Graph::Edges() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<size_t>(num_edges()));
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

}  // namespace rwdom
