// Graph surgery: induced subgraphs, largest-component extraction, and
// degree-ordered relabeling. Used to clean raw edge lists (SNAP files often
// carry small disconnected shards) and to build cache-friendly node orders.
#ifndef RWDOM_GRAPH_TRANSFORMS_H_
#define RWDOM_GRAPH_TRANSFORMS_H_

#include <vector>

#include "graph/graph.h"

namespace rwdom {

/// A transformed graph plus the mapping back to the original node ids.
struct TransformedGraph {
  Graph graph;
  /// original_of[new_id] = node id in the input graph.
  std::vector<NodeId> original_of;
};

/// Induced subgraph on `keep` (duplicates ignored). New ids are assigned in
/// ascending order of the original ids.
TransformedGraph InducedSubgraph(const Graph& graph,
                                 const std::vector<NodeId>& keep);

/// The largest connected component (smallest-node-id component wins ties).
TransformedGraph LargestComponent(const Graph& graph);

/// Relabels nodes by non-increasing degree (ties by original id): hubs get
/// the smallest ids, which improves locality of walk-heavy kernels.
TransformedGraph RelabelByDegree(const Graph& graph);

/// Applies an explicit permutation: node u of the input becomes
/// new_of[u] in the output. `new_of` must be a permutation of [0, n).
Graph Permute(const Graph& graph, const std::vector<NodeId>& new_of);

}  // namespace rwdom

#endif  // RWDOM_GRAPH_TRANSFORMS_H_
