// Mutable edge accumulator that produces an immutable CSR Graph.
//
// The builder normalizes arbitrary edge streams into the simple-graph
// invariants Graph promises: self-loops are dropped (or rejected), parallel
// edges are deduplicated, adjacency lists come out sorted.
#ifndef RWDOM_GRAPH_GRAPH_BUILDER_H_
#define RWDOM_GRAPH_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace rwdom {

/// What to do with a self-loop passed to AddEdge.
enum class SelfLoopPolicy {
  kDrop,    ///< Silently ignore (default; SNAP files contain a few).
  kReject,  ///< Build() returns InvalidArgument.
};

/// Accumulates undirected edges, then Build()s a CSR Graph.
///
/// Usage:
///   GraphBuilder b(/*num_nodes=*/4);
///   b.AddEdge(0, 1);
///   b.AddEdge(1, 2);
///   Graph g = std::move(b).BuildOrDie();
class GraphBuilder {
 public:
  /// `num_nodes` fixes the node universe [0, num_nodes). Pass 0 and use
  /// GrowToInclude / AddEdgeAutoGrow for id discovery while streaming a file.
  explicit GraphBuilder(NodeId num_nodes = 0,
                        SelfLoopPolicy self_loops = SelfLoopPolicy::kDrop);

  GraphBuilder(const GraphBuilder&) = delete;
  GraphBuilder& operator=(const GraphBuilder&) = delete;
  GraphBuilder(GraphBuilder&&) noexcept = default;
  GraphBuilder& operator=(GraphBuilder&&) noexcept = default;

  /// Adds undirected edge {u, v}. Both endpoints must be < num_nodes().
  /// Duplicate edges are deduplicated at Build() time.
  void AddEdge(NodeId u, NodeId v);

  /// Adds {u, v}, growing the node universe to cover both endpoints.
  void AddEdgeAutoGrow(NodeId u, NodeId v);

  /// Ensures num_nodes() > u.
  void GrowToInclude(NodeId u);

  /// Pre-sizes the internal edge store for `num_edges` AddEdge calls;
  /// generators and loaders that know (or can bound) m call this to avoid
  /// reallocation churn on large graphs.
  void ReserveEdges(int64_t num_edges) {
    RWDOM_CHECK_GE(num_edges, 0);
    edges_.reserve(static_cast<size_t>(num_edges));
  }

  NodeId num_nodes() const { return num_nodes_; }

  /// Edges accumulated so far (before dedup).
  int64_t num_raw_edges() const {
    return static_cast<int64_t>(edges_.size());
  }

  /// Consumes the builder, producing the CSR graph. Fails only under
  /// SelfLoopPolicy::kReject when a self-loop was added.
  Result<Graph> Build() &&;

  /// Build() that aborts on error; for tests and generators whose inputs are
  /// correct by construction.
  Graph BuildOrDie() &&;

 private:
  NodeId num_nodes_;
  SelfLoopPolicy self_loop_policy_;
  bool saw_self_loop_ = false;
  // Stored canonically as (min, max).
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace rwdom

#endif  // RWDOM_GRAPH_GRAPH_BUILDER_H_
