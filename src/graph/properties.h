// Structural diagnostics: degree statistics, connected components, BFS
// distances. Used by the dataset registry (Table 2 reporting) and by tests.
#ifndef RWDOM_GRAPH_PROPERTIES_H_
#define RWDOM_GRAPH_PROPERTIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace rwdom {

/// Summary of a graph's degree structure and connectivity.
struct GraphStats {
  NodeId num_nodes = 0;
  int64_t num_edges = 0;
  double avg_degree = 0.0;
  int32_t min_degree = 0;
  int32_t max_degree = 0;
  NodeId num_isolated = 0;
  int32_t num_components = 0;
  NodeId largest_component_size = 0;

  std::string ToString() const;
};

/// Computes all GraphStats fields in O(n + m).
GraphStats ComputeGraphStats(const Graph& graph);

/// component[u] = id of u's connected component (ids dense from 0, ordered
/// by smallest contained node).
std::vector<int32_t> ConnectedComponents(const Graph& graph);

/// BFS hop distance from `source` to every node; -1 where unreachable.
std::vector<int32_t> BfsDistances(const Graph& graph, NodeId source);

/// True iff every node is reachable from node 0 (empty graph: true).
bool IsConnected(const Graph& graph);

/// Degree of every node, as a vector (convenience for baselines/tests).
std::vector<int32_t> Degrees(const Graph& graph);

}  // namespace rwdom

#endif  // RWDOM_GRAPH_PROPERTIES_H_
