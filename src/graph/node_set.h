// NodeFlagSet: an O(1)-membership node subset with iteration over members.
// All selection algorithms carry their working set S in this form.
#ifndef RWDOM_GRAPH_NODE_SET_H_
#define RWDOM_GRAPH_NODE_SET_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/logging.h"
#include "util/simd.h"

namespace rwdom {

/// Dense-flag node set over the universe [0, n). Insert-only by design: the
/// greedy algorithms only ever grow S.
class NodeFlagSet {
 public:
  /// Empty set over a universe of `universe_size` nodes. The flag array
  /// carries kFlagsPadBytes of zeroed slack so SIMD gathers over
  /// flags_data() may read past the last node (util/simd.h contract).
  explicit NodeFlagSet(NodeId universe_size)
      : universe_(universe_size),
        flags_(static_cast<size_t>(universe_size) +
                   static_cast<size_t>(kFlagsPadBytes),
               0) {
    RWDOM_CHECK_GE(universe_size, 0);
  }

  /// Builds from an explicit member list.
  NodeFlagSet(NodeId universe_size, const std::vector<NodeId>& members)
      : NodeFlagSet(universe_size) {
    for (NodeId u : members) Insert(u);
  }

  /// Adds `u`; returns false if already present.
  bool Insert(NodeId u) {
    RWDOM_DCHECK(u >= 0 && u < universe_);
    if (flags_[static_cast<size_t>(u)]) return false;
    flags_[static_cast<size_t>(u)] = 1;
    members_.push_back(u);
    return true;
  }

  bool Contains(NodeId u) const {
    RWDOM_DCHECK(u >= 0 && u < universe_);
    return flags_[static_cast<size_t>(u)] != 0;
  }

  NodeId universe_size() const { return universe_; }
  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// Raw 0/1 flag bytes, one per node, with kFlagsPadBytes of readable
  /// (zero) slack after the last — the layout the SIMD first-hit kernel
  /// gathers from.
  const uint8_t* flags_data() const { return flags_.data(); }

  /// Members in insertion order.
  const std::vector<NodeId>& members() const { return members_; }

 private:
  NodeId universe_ = 0;
  std::vector<uint8_t> flags_;
  std::vector<NodeId> members_;
};

}  // namespace rwdom

#endif  // RWDOM_GRAPH_NODE_SET_H_
