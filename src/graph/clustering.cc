#include "graph/clustering.h"

namespace rwdom {
namespace {

// Closed wedges centered at u = number of adjacent neighbor pairs.
int64_t ClosedWedgesAt(const Graph& graph, NodeId u) {
  auto adj = graph.neighbors(u);
  int64_t closed = 0;
  for (size_t i = 0; i < adj.size(); ++i) {
    for (size_t j = i + 1; j < adj.size(); ++j) {
      if (graph.HasEdge(adj[i], adj[j])) ++closed;
    }
  }
  return closed;
}

}  // namespace

double LocalClusteringCoefficient(const Graph& graph, NodeId u) {
  const int64_t d = graph.degree(u);
  if (d < 2) return 0.0;
  const int64_t possible = d * (d - 1) / 2;
  return static_cast<double>(ClosedWedgesAt(graph, u)) /
         static_cast<double>(possible);
}

double AverageClusteringCoefficient(const Graph& graph) {
  if (graph.num_nodes() == 0) return 0.0;
  double total = 0.0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    total += LocalClusteringCoefficient(graph, u);
  }
  return total / static_cast<double>(graph.num_nodes());
}

double GlobalClusteringCoefficient(const Graph& graph) {
  int64_t closed = 0;
  int64_t wedges = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const int64_t d = graph.degree(u);
    wedges += d * (d - 1) / 2;
    closed += ClosedWedgesAt(graph, u);
  }
  if (wedges == 0) return 0.0;
  // `closed` counts each triangle three times (once per corner), which is
  // exactly the "3 * triangles" numerator.
  return static_cast<double>(closed) / static_cast<double>(wedges);
}

int64_t CountTriangles(const Graph& graph) {
  int64_t corners = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    corners += ClosedWedgesAt(graph, u);
  }
  return corners / 3;
}

}  // namespace rwdom
