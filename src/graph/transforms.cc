#include "graph/transforms.h"

#include <algorithm>
#include <numeric>

#include "graph/graph_builder.h"
#include "graph/properties.h"
#include "util/logging.h"

namespace rwdom {

TransformedGraph InducedSubgraph(const Graph& graph,
                                 const std::vector<NodeId>& keep) {
  std::vector<NodeId> sorted = keep;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (NodeId u : sorted) RWDOM_CHECK(graph.IsValidNode(u));

  std::vector<NodeId> new_id(static_cast<size_t>(graph.num_nodes()),
                             kInvalidNode);
  for (size_t i = 0; i < sorted.size(); ++i) {
    new_id[static_cast<size_t>(sorted[i])] = static_cast<NodeId>(i);
  }
  GraphBuilder builder(static_cast<NodeId>(sorted.size()));
  for (NodeId u : sorted) {
    for (NodeId v : graph.neighbors(u)) {
      if (u < v && new_id[static_cast<size_t>(v)] != kInvalidNode) {
        builder.AddEdge(new_id[static_cast<size_t>(u)],
                        new_id[static_cast<size_t>(v)]);
      }
    }
  }
  return {std::move(builder).BuildOrDie(), std::move(sorted)};
}

TransformedGraph LargestComponent(const Graph& graph) {
  std::vector<int32_t> component = ConnectedComponents(graph);
  std::vector<int64_t> sizes;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    size_t c = static_cast<size_t>(component[u]);
    if (c >= sizes.size()) sizes.resize(c + 1, 0);
    ++sizes[c];
  }
  int32_t best = 0;
  for (size_t c = 1; c < sizes.size(); ++c) {
    if (sizes[c] > sizes[static_cast<size_t>(best)]) {
      best = static_cast<int32_t>(c);
    }
  }
  std::vector<NodeId> keep;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (component[u] == best) keep.push_back(u);
  }
  return InducedSubgraph(graph, keep);
}

TransformedGraph RelabelByDegree(const Graph& graph) {
  std::vector<NodeId> order(static_cast<size_t>(graph.num_nodes()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&graph](NodeId a, NodeId b) {
    int32_t da = graph.degree(a);
    int32_t db = graph.degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  std::vector<NodeId> new_of(static_cast<size_t>(graph.num_nodes()));
  for (size_t i = 0; i < order.size(); ++i) {
    new_of[static_cast<size_t>(order[i])] = static_cast<NodeId>(i);
  }
  return {Permute(graph, new_of), std::move(order)};
}

Graph Permute(const Graph& graph, const std::vector<NodeId>& new_of) {
  RWDOM_CHECK_EQ(static_cast<NodeId>(new_of.size()), graph.num_nodes());
  // Verify permutation.
  std::vector<uint8_t> seen(new_of.size(), 0);
  for (NodeId target : new_of) {
    RWDOM_CHECK(target >= 0 &&
                static_cast<size_t>(target) < new_of.size());
    RWDOM_CHECK(!seen[static_cast<size_t>(target)])
        << "new_of is not a permutation";
    seen[static_cast<size_t>(target)] = 1;
  }
  GraphBuilder builder(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.neighbors(u)) {
      if (u < v) {
        builder.AddEdge(new_of[static_cast<size_t>(u)],
                        new_of[static_cast<size_t>(v)]);
      }
    }
  }
  return std::move(builder).BuildOrDie();
}

}  // namespace rwdom
