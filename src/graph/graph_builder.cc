#include "graph/graph_builder.h"

#include <algorithm>

#include "util/logging.h"

namespace rwdom {

GraphBuilder::GraphBuilder(NodeId num_nodes, SelfLoopPolicy self_loops)
    : num_nodes_(num_nodes), self_loop_policy_(self_loops) {
  RWDOM_CHECK_GE(num_nodes, 0);
}

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  RWDOM_CHECK(u >= 0 && u < num_nodes_) << "node " << u << " out of range";
  RWDOM_CHECK(v >= 0 && v < num_nodes_) << "node " << v << " out of range";
  if (u == v) {
    saw_self_loop_ = true;
    return;
  }
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

void GraphBuilder::AddEdgeAutoGrow(NodeId u, NodeId v) {
  GrowToInclude(std::max(u, v));
  AddEdge(u, v);
}

void GraphBuilder::GrowToInclude(NodeId u) {
  RWDOM_CHECK_GE(u, 0);
  num_nodes_ = std::max(num_nodes_, u + 1);
}

Result<Graph> GraphBuilder::Build() && {
  if (saw_self_loop_ && self_loop_policy_ == SelfLoopPolicy::kReject) {
    return Status::InvalidArgument("self-loop in edge stream");
  }

  // Dedup parallel edges via sort + unique on the canonical (min,max) pairs.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  const size_t n = static_cast<size_t>(num_nodes_);
  std::vector<int64_t> offsets(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets[static_cast<size_t>(u) + 1];
    ++offsets[static_cast<size_t>(v) + 1];
  }
  for (size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> neighbors(static_cast<size_t>(offsets[n]));
  std::vector<int64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    neighbors[static_cast<size_t>(cursor[static_cast<size_t>(u)]++)] = v;
    neighbors[static_cast<size_t>(cursor[static_cast<size_t>(v)]++)] = u;
  }

  // Canonical edge order (sorted pairs) already yields sorted adjacency for
  // the min endpoints but not for the max endpoints; sort each list.
  for (size_t u = 0; u < n; ++u) {
    std::sort(neighbors.begin() + offsets[u], neighbors.begin() + offsets[u + 1]);
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return Graph(std::move(offsets), std::move(neighbors));
}

Graph GraphBuilder::BuildOrDie() && {
  Result<Graph> result = std::move(*this).Build();
  RWDOM_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace rwdom
