// Clustering coefficients — the structural property that separates the
// paper's real datasets from naive random stand-ins, and the knob our
// community generator is validated against.
#ifndef RWDOM_GRAPH_CLUSTERING_H_
#define RWDOM_GRAPH_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace rwdom {

/// Local clustering coefficient of `u`: closed wedges / possible wedges;
/// 0 for degree < 2.
double LocalClusteringCoefficient(const Graph& graph, NodeId u);

/// Average of the local coefficients over all nodes (Watts–Strogatz
/// definition). O(sum_u d_u^2 log d) via sorted-adjacency lookups.
double AverageClusteringCoefficient(const Graph& graph);

/// Global (transitivity) coefficient: 3 * triangles / wedges.
double GlobalClusteringCoefficient(const Graph& graph);

/// Total triangle count.
int64_t CountTriangles(const Graph& graph);

}  // namespace rwdom

#endif  // RWDOM_GRAPH_CLUSTERING_H_
