// Edge-list I/O in the SNAP text format the paper's datasets ship in:
// '#'-prefixed comment lines, then one "u<ws>v" pair per line. Node ids in
// the file may be sparse; they are remapped to dense [0, n) in first-seen
// order (a common convention; the mapping can be retrieved).
#ifndef RWDOM_GRAPH_GRAPH_IO_H_
#define RWDOM_GRAPH_GRAPH_IO_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace rwdom {

/// A loaded graph plus the original-id -> dense-id mapping.
struct LoadedGraph {
  Graph graph;
  /// original_ids[dense] = id as it appeared in the file.
  std::vector<int64_t> original_ids;
};

/// Parses SNAP-style edge-list text (not a file). Lines beginning with '#'
/// or '%' are comments; blank lines are skipped; fields are
/// whitespace-separated. Extra columns beyond the first two are ignored
/// (some SNAP files carry timestamps/weights).
Result<LoadedGraph> ParseEdgeList(const std::string& text);

/// Loads a SNAP-style edge list from `path`.
Result<LoadedGraph> LoadEdgeList(const std::string& path);

/// Writes `graph` as a SNAP-style edge list (dense ids, one edge per line,
/// u < v) preceded by a comment header.
Status SaveEdgeList(const Graph& graph, const std::string& path,
                    const std::string& comment = "");

}  // namespace rwdom

#endif  // RWDOM_GRAPH_GRAPH_IO_H_
