// Edge-list I/O in the SNAP text format the paper's datasets ship in:
// '#'-prefixed comment lines, then one "u<ws>v[<ws>w]" record per line.
// Node ids in the file may be sparse; they are remapped to dense [0, n) in
// first-seen order (a common convention; the mapping can be retrieved).
//
// This is the ONE edge-list parser in the tree: the unweighted Graph
// loader below, the weighted loader (wgraph/weighted_graph_io.h), and the
// substrate autodetecting loader (wgraph/substrate.h) all consume
// ParseEdgeRecords / IdRemapper rather than re-implementing the lexing.
#ifndef RWDOM_GRAPH_GRAPH_IO_H_
#define RWDOM_GRAPH_GRAPH_IO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace rwdom {

/// Remaps sparse original ids to dense ids in first-seen order.
class IdRemapper {
 public:
  NodeId Map(int64_t original) {
    auto [it, inserted] =
        dense_.try_emplace(original, static_cast<NodeId>(originals_.size()));
    if (inserted) originals_.push_back(original);
    return it->second;
  }

  std::vector<int64_t> TakeOriginals() && { return std::move(originals_); }
  size_t size() const { return originals_.size(); }

 private:
  std::unordered_map<int64_t, NodeId> dense_;
  std::vector<int64_t> originals_;
};

/// How a third numeric column is interpreted by ParseEdgeRecords.
enum class WeightColumnMode {
  /// Never interpreted: extra columns (timestamps, annotations) are
  /// ignored and every record gets weight 1. The legacy SNAP behavior.
  kIgnore,
  /// A third column, when present, must parse as a positive finite weight;
  /// anything else is a Corruption error. The strict weighted-file mode.
  kRequire,
  /// A third column that parses as a positive finite double becomes the
  /// weight; a numeric but non-positive/non-finite one is a Corruption
  /// error (it was clearly meant as a weight), and a non-numeric one is an
  /// annotation and ignored — but mixing weights and annotations within
  /// one file is an error. A line with no third column means weight 1.0,
  /// matching kRequire's long-standing optional-column rule. Used by the
  /// substrate loader's autodetection.
  kAuto,
};

/// One parsed edge-list line, already remapped to dense ids.
struct EdgeRecord {
  NodeId u;
  NodeId v;
  double weight;  ///< 1.0 when the line carried no weight.
};

/// The full parse of one edge-list text.
struct EdgeRecordList {
  std::vector<EdgeRecord> records;
  /// original_ids[dense] = id as it appeared in the file.
  std::vector<int64_t> original_ids;
  /// True when at least one record's weight came from the file (kRequire /
  /// kAuto modes only).
  bool saw_weights = false;
};

/// What ForEachEdgeRecord learned about the stream as a whole.
struct EdgeRecordSummary {
  /// original_ids[dense] = id as it appeared in the file.
  std::vector<int64_t> original_ids;
  /// True when at least one record's weight came from the file (kRequire /
  /// kAuto modes only).
  bool saw_weights = false;
};

/// Lexes SNAP-style edge-list text, calling `visit` once per record in
/// file order without materializing the list — the streaming core every
/// loader builds on. Lines beginning with '#' or '%' are comments; blank
/// lines are skipped; fields are whitespace-separated. Self-loops (u == v)
/// are dropped, matching every rwdom graph builder.
Result<EdgeRecordSummary> ForEachEdgeRecord(
    const std::string& text, WeightColumnMode mode,
    const std::function<void(const EdgeRecord&)>& visit);

/// Materializing convenience over ForEachEdgeRecord, for loaders that need
/// the whole record list before deciding what to build (the weighted and
/// substrate loaders).
Result<EdgeRecordList> ParseEdgeRecords(const std::string& text,
                                        WeightColumnMode mode);

/// A loaded graph plus the original-id -> dense-id mapping.
struct LoadedGraph {
  Graph graph;
  /// original_ids[dense] = id as it appeared in the file.
  std::vector<int64_t> original_ids;
};

/// Parses SNAP-style edge-list text (not a file) into an unweighted Graph.
/// Extra columns beyond the first two are ignored (some SNAP files carry
/// timestamps/weights); use the substrate loader for weight autodetection.
Result<LoadedGraph> ParseEdgeList(const std::string& text);

/// Loads a SNAP-style edge list from `path`.
Result<LoadedGraph> LoadEdgeList(const std::string& path);

/// Writes `graph` as a SNAP-style edge list (dense ids, one edge per line,
/// u < v) preceded by a comment header.
Status SaveEdgeList(const Graph& graph, const std::string& path,
                    const std::string& comment = "");

/// Like SaveEdgeList, but emits the pre-remap node ids recorded in
/// `original_ids` (size must be num_nodes()), so a file loaded with
/// LoadEdgeList round-trips with its original identifiers. Note that
/// isolated nodes do not survive edge-list round-trips (the format has no
/// way to name them).
Status SaveEdgeListWithOriginalIds(const Graph& graph,
                                   const std::vector<int64_t>& original_ids,
                                   const std::string& path,
                                   const std::string& comment = "");

}  // namespace rwdom

#endif  // RWDOM_GRAPH_GRAPH_IO_H_
