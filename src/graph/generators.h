// Graph generators: the random models used by the paper's evaluation plus
// deterministic families for tests.
//
// The paper's synthetic graphs come from "a commonly-used power-law random
// graph model [Barabási & Albert 1999]"; GenerateBarabasiAlbert implements
// preferential attachment, and GeneratePowerLawWithSize matches an exact
// (n, m) pair the way the paper reports its synthetic sizes (e.g. 1000 nodes
// / 9956 edges; scalability series G_i with i*0.1M nodes and i*1M edges).
//
// All generators are deterministic functions of their seed.
#ifndef RWDOM_GRAPH_GENERATORS_H_
#define RWDOM_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/status.h"

namespace rwdom {

/// Barabási–Albert preferential attachment. Starts from a clique on
/// `attach_edges + 1` nodes; each subsequent node attaches `attach_edges`
/// distinct neighbors chosen proportionally to degree.
/// Requires n > attach_edges >= 1.
Result<Graph> GenerateBarabasiAlbert(NodeId n, int32_t attach_edges,
                                     uint64_t seed);

/// Power-law graph with exactly `n` nodes and `m` edges: Barabási–Albert
/// with attach = floor(m/n) (at least 1), topped up with uniform random
/// non-duplicate edges to reach m exactly. Requires m >= n - 1 is NOT
/// required; requires m <= n*(n-1)/2 and n >= 2.
Result<Graph> GeneratePowerLawWithSize(NodeId n, int64_t m, uint64_t seed);

/// Power-law graph with planted community structure: communities with
/// Zipf-distributed sizes, preferential attachment inside each community,
/// and a `mixing` fraction of the m edges rewired across communities.
/// Produces exactly (n, m). This is the stand-in for the paper's real
/// social/co-authorship datasets, whose clustering makes pure degree
/// heuristics suboptimal (the effect behind Figs. 6-7).
/// Requires n >= 2, num_communities >= 1, 0 <= mixing <= 1.
Result<Graph> GeneratePowerLawCommunity(NodeId n, int64_t m,
                                        int32_t num_communities,
                                        double mixing, uint64_t seed);

/// Erdős–Rényi G(n, m): m distinct uniform random edges.
Result<Graph> GenerateErdosRenyiGnm(NodeId n, int64_t m, uint64_t seed);

/// Erdős–Rényi G(n, p): each pair independently with probability p.
/// Intended for small n (O(n^2) work).
Result<Graph> GenerateErdosRenyiGnp(NodeId n, double p, uint64_t seed);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side... (2k total), each edge rewired with probability `beta`.
/// Requires 1 <= k and 2k < n.
Result<Graph> GenerateWattsStrogatz(NodeId n, int32_t k, double beta,
                                    uint64_t seed);

/// Chung–Lu graph with expected power-law degrees ~ x^{-gamma}; expected
/// average degree `avg_degree`. Intended for moderately sized graphs.
Result<Graph> GenerateChungLu(NodeId n, double gamma, double avg_degree,
                              uint64_t seed);

// --- Deterministic families (tests and hand-computable cases) ---

/// Path P_n: 0-1-2-...-(n-1).
Graph GeneratePath(NodeId n);

/// Cycle C_n. Requires n >= 3.
Graph GenerateCycle(NodeId n);

/// Star S_n: node 0 is the hub, nodes 1..n-1 are leaves. Requires n >= 1.
Graph GenerateStar(NodeId n);

/// Complete graph K_n.
Graph GenerateComplete(NodeId n);

/// rows x cols grid, node (r, c) = r*cols + c.
Graph GenerateGrid(NodeId rows, NodeId cols);

/// Two cliques of size `clique_size` joined by a single bridge edge between
/// node 0 and node clique_size. A classic hard case for degree heuristics.
Graph GenerateTwoCliquesBridge(NodeId clique_size);

/// The 8-node running example graph from Fig. 1 of the paper.
/// Nodes 0..7 correspond to v1..v8.
Graph GeneratePaperFigure1();

}  // namespace rwdom

#endif  // RWDOM_GRAPH_GENERATORS_H_
