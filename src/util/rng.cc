#include "util/rng.h"

namespace rwdom {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t MixSeeds(uint64_t a, uint64_t b) {
  // Feed both words through SplitMix64; asymmetric so MixSeeds(a,b) !=
  // MixSeeds(b,a) in general.
  uint64_t state = a ^ 0x9E3779B97F4A7C15ULL;
  uint64_t x = SplitMix64(&state);
  state = b ^ x;
  return SplitMix64(&state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  RWDOM_DCHECK(bound > 0);
  // Lemire's method: multiply-shift with a rejection step to remove bias.
  unsigned __int128 product =
      static_cast<unsigned __int128>(Next()) * bound;
  uint64_t low = static_cast<uint64_t>(product);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      product = static_cast<unsigned __int128>(Next()) * bound;
      low = static_cast<uint64_t>(product);
    }
  }
  return static_cast<uint64_t>(product >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  RWDOM_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace rwdom
