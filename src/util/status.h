// Status / Result<T>: lightweight error propagation for fallible operations
// (I/O, parsing, configuration validation). Follows the RocksDB/Arrow idiom:
// library code never throws; internal invariant violations use RWDOM_CHECK.
#ifndef RWDOM_UTIL_STATUS_H_
#define RWDOM_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace rwdom {

// Coarse error taxonomy; sufficient for a library of this scope.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); error case carries a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Result<T> is either a value of T or an error Status. Accessing the value
/// of an error result aborts (programming error, like RocksDB's
/// Status-must-be-checked discipline but enforced at access time).
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status, so `return value;` and
  /// `return Status::...;` both work in functions returning Result<T>.
  Result(T value) : repr_(std::move(value)) {}           // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {}    // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(std::get<Status>(repr_));
}

}  // namespace rwdom

/// Propagates a non-OK Status from an expression returning Status.
#define RWDOM_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::rwdom::Status _rwdom_status = (expr);           \
    if (!_rwdom_status.ok()) return _rwdom_status;    \
  } while (false)

/// Evaluates an expression returning Result<T>; on error returns the Status,
/// otherwise assigns the value to `lhs`.
#define RWDOM_ASSIGN_OR_RETURN(lhs, expr)            \
  RWDOM_ASSIGN_OR_RETURN_IMPL_(                      \
      RWDOM_STATUS_CONCAT_(_rwdom_result, __LINE__), lhs, expr)

#define RWDOM_STATUS_CONCAT_INNER_(a, b) a##b
#define RWDOM_STATUS_CONCAT_(a, b) RWDOM_STATUS_CONCAT_INNER_(a, b)
#define RWDOM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // RWDOM_UTIL_STATUS_H_
