// Thin POSIX TCP helpers for the server layer: RAII file descriptors,
// IPv4 listen/connect, interruptible accept, send-all, and newline
// framing. Deliberately minimal — the JSONL query protocol needs exactly
// "a stream of lines over one connection", nothing more (no TLS, no
// IPv6, no nonblocking state machine).
//
// Cancellation model: blocking reads and accepts take an optional
// `cancelled` predicate polled every poll_interval_ms, so server workers
// can notice a shutdown flag without OS-level tricks (signals into
// threads, socket shutdown() races). A clean EOF is a normal outcome,
// not an error.
#ifndef RWDOM_UTIL_SOCKET_H_
#define RWDOM_UTIL_SOCKET_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace rwdom {

/// Owns one file descriptor; closes it on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// A pipe whose write end is async-signal-safe to poke — the wakeup
/// mechanism behind graceful shutdown (SIGINT handlers may only write()).
struct WakePipe {
  UniqueFd read_end;
  UniqueFd write_end;
};
Result<WakePipe> MakeWakePipe();

/// Writes one byte to the pipe; safe from signal handlers.
void PokeWakePipe(int write_fd);

/// Binds + listens on host:port (IPv4; "localhost" accepted). port 0
/// picks an ephemeral port — read it back with LocalPort. SO_REUSEADDR
/// is set so restarts do not trip over TIME_WAIT.
Result<UniqueFd> TcpListen(const std::string& host, int port, int backlog);

/// The locally bound port of a socket (after TcpListen with port 0).
Result<int> LocalPort(int fd);

/// Connects to host:port (IPv4; "localhost" accepted), blocking.
Result<UniqueFd> TcpConnect(const std::string& host, int port);

/// Accepts one connection, polling `wake_fd` alongside the listener:
/// returns an empty optional when wake_fd becomes readable (shutdown)
/// instead of a connection.
Result<std::optional<UniqueFd>> AcceptWithWake(int listen_fd, int wake_fd);

/// Sends all of `data`, retrying partial writes; SIGPIPE suppressed
/// (a dead peer surfaces as an IoError).
Status SendAll(int fd, std::string_view data);

/// SendAll with a wall-clock budget: if the peer stops draining and the
/// kernel buffer stays full past timeout_ms, gives up with
/// DeadlineExceeded (partial bytes may have been sent — the connection
/// is unusable afterwards and should be closed). timeout_ms <= 0 means
/// no timeout. This is the guard that keeps a stalled client from
/// pinning a server worker forever.
Status SendAllWithin(int fd, std::string_view data, int timeout_ms);

/// Buffered newline framing over one socket: each ReadLine returns the
/// next '\n'-terminated line with the newline (and any trailing '\r')
/// stripped. A final unterminated line before EOF is still delivered.
///
/// Lines are capped at max_line_bytes (default 1 MiB): an overlong line
/// yields kOverflow exactly once, the offending bytes are discarded
/// through the terminating newline (resynchronising the stream), and
/// the next call reads the following line normally. The cap bounds
/// per-connection memory no matter what the peer sends.
class LineReader {
 public:
  enum class Outcome { kLine, kEof, kCancelled, kOverflow };

  static constexpr size_t kDefaultMaxLineBytes = 1 << 20;

  explicit LineReader(int fd, size_t max_line_bytes = kDefaultMaxLineBytes)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  /// Blocks for the next line. `cancelled` (optional) is polled every
  /// poll_interval_ms; when it returns true the read gives up with
  /// kCancelled (bytes already buffered are kept for a later call).
  Result<Outcome> ReadLine(std::string* line,
                           const std::function<bool()>& cancelled = nullptr,
                           int poll_interval_ms = 100);

 private:
  int fd_;
  size_t max_line_bytes_;
  std::string buffer_;
  bool eof_ = false;
  bool discarding_ = false;  // Inside an overlong line, seeking its '\n'.
};

}  // namespace rwdom

#endif  // RWDOM_UTIL_SOCKET_H_
