// POSIX TCP helpers for the server layer: RAII file descriptors, IPv4
// listen/connect, interruptible accept, send-all, newline framing, and
// the non-blocking primitives behind the epoll event loop (readiness
// sets, partial send/recv, and a push-driven line-framing state
// machine). Deliberately minimal beyond that — the JSONL query protocol
// needs exactly "a stream of lines over one connection" (no TLS, no
// IPv6).
//
// Two framing front-ends share one state machine:
//   * LineReader — blocking pull: ReadLine() recv()s until it can return
//     the next line (the threaded server path and all clients).
//   * LineDecoder — non-blocking push: the caller feeds whatever bytes
//     recv() produced and drains framing events (the epoll path).
// LineReader is implemented ON LineDecoder, so the two contracts cannot
// drift: cap, overflow-then-resync, '\r' stripping and the trailing
// unterminated line behave identically byte for byte.
//
// Cancellation model (blocking paths only): reads and accepts take an
// optional `cancelled` predicate polled every poll_interval_ms, so
// server workers can notice a shutdown flag without OS-level tricks
// (signals into threads, socket shutdown() races). A clean EOF is a
// normal outcome, not an error. The non-blocking paths do not poll —
// readiness and shutdown both arrive through an EpollSet.
#ifndef RWDOM_UTIL_SOCKET_H_
#define RWDOM_UTIL_SOCKET_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace rwdom {

/// Owns one file descriptor; closes it on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// A pipe whose write end is async-signal-safe to poke — the wakeup
/// mechanism behind graceful shutdown (SIGINT handlers may only write())
/// and behind cross-thread submission into an event-loop shard.
struct WakePipe {
  UniqueFd read_end;
  UniqueFd write_end;
};
Result<WakePipe> MakeWakePipe();

/// Writes one byte to the pipe; safe from signal handlers.
void PokeWakePipe(int write_fd);

/// Reads the pipe empty (requires a non-blocking read end). Collapses
/// any number of queued pokes into one wakeup.
void DrainWakePipe(int read_fd);

/// Binds + listens on host:port (IPv4; "localhost" accepted). port 0
/// picks an ephemeral port — read it back with LocalPort. SO_REUSEADDR
/// is set so restarts do not trip over TIME_WAIT.
Result<UniqueFd> TcpListen(const std::string& host, int port, int backlog);

/// The locally bound port of a socket (after TcpListen with port 0).
Result<int> LocalPort(int fd);

/// Connects to host:port (IPv4; "localhost" accepted), blocking.
Result<UniqueFd> TcpConnect(const std::string& host, int port);

/// Accepts one connection, polling `wake_fd` alongside the listener:
/// returns an empty optional when wake_fd becomes readable (shutdown)
/// instead of a connection.
Result<std::optional<UniqueFd>> AcceptWithWake(int listen_fd, int wake_fd);

/// Sends all of `data`, retrying partial writes; SIGPIPE suppressed
/// (a dead peer surfaces as an IoError).
Status SendAll(int fd, std::string_view data);

/// SendAll with a wall-clock budget: if the peer stops draining and the
/// kernel buffer stays full past timeout_ms, gives up with
/// DeadlineExceeded (partial bytes may have been sent — the connection
/// is unusable afterwards and should be closed). timeout_ms <= 0 means
/// no timeout. This is the guard that keeps a stalled client from
/// pinning a server worker forever.
Status SendAllWithin(int fd, std::string_view data, int timeout_ms);

// --- Non-blocking primitives (the epoll event loop's substrate). ---

/// Puts the fd into O_NONBLOCK mode.
Status SetNonBlocking(int fd);

/// One non-blocking send: returns how many bytes the kernel took (0 when
/// the socket buffer is full — not an error), SIGPIPE suppressed. Does
/// NOT hit the `socket.send` fault site: the event loop arms that once
/// per protocol message, not once per partial write, so a fault schedule
/// counts the same sends in threaded and epoll mode.
Result<size_t> SendSome(int fd, std::string_view data);

/// One non-blocking recv into buf: returns bytes read; 0 with
/// *eof=false means "would block", 0 with *eof=true is a clean EOF.
Result<size_t> RecvSome(int fd, char* buf, size_t capacity, bool* eof);

/// One fd's readiness as reported by EpollSet::Wait. `error` covers
/// EPOLLERR/EPOLLHUP — the connection is dead either way.
struct ReadyEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

/// RAII epoll set with interest toggling — the readiness seam between
/// the event loop and the kernel. Level-triggered by design: a shard
/// that leaves bytes unread or unwritten is simply re-notified, so no
/// starvation bookkeeping is needed. Non-Linux builds get Unimplemented
/// from Create() (the server then requires --io=threaded).
class EpollSet {
 public:
  static Result<EpollSet> Create();

  EpollSet() = default;
  EpollSet(EpollSet&&) = default;
  EpollSet& operator=(EpollSet&&) = default;

  bool valid() const { return epoll_fd_.valid(); }

  /// Registers fd with the given interest. One registration per fd.
  Status Add(int fd, bool want_read, bool want_write);
  /// Re-arms fd's interest (EPOLL_CTL_MOD).
  Status Modify(int fd, bool want_read, bool want_write);
  /// Drops fd from the set. Safe to call right before closing the fd.
  Status Remove(int fd);

  /// Blocks up to timeout_ms (-1 = forever) and fills `out` with every
  /// ready fd. Returns the event count (0 on timeout); EINTR retries.
  Result<int> Wait(std::vector<ReadyEvent>* out, int timeout_ms);

 private:
  explicit EpollSet(UniqueFd fd) : epoll_fd_(std::move(fd)) {}
  UniqueFd epoll_fd_;
};

/// Push-driven newline framing — the non-blocking sibling of LineReader
/// (and the engine inside it). Feed raw bytes with Append / signal EOF
/// with NotifyEof, then drain events with Next:
///
///   kLine     — *line is the next '\n'-terminated line, newline and any
///               trailing '\r' stripped. A final unterminated line
///               before EOF is still delivered.
///   kOverflow — a line exceeded max_line_bytes. Reported exactly once
///               per offending line; its bytes are discarded through the
///               terminating newline (resynchronising the stream), and
///               the decoder keeps at most max_line_bytes buffered no
///               matter what the peer sends.
///   kNeedMore — nothing to deliver; feed more bytes (or, when
///               finished() is true, the stream is fully consumed — the
///               non-blocking spelling of kEof).
class LineDecoder {
 public:
  enum class Event { kNeedMore, kLine, kOverflow };

  static constexpr size_t kDefaultMaxLineBytes = 1 << 20;

  explicit LineDecoder(size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  void Append(std::string_view bytes) { buffer_.append(bytes); }
  void NotifyEof() { eof_ = true; }

  Event Next(std::string* line);

  /// EOF was signalled and every buffered byte has been consumed: Next
  /// can never return anything but kNeedMore again.
  bool finished() const { return eof_ && buffer_.empty(); }

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t max_line_bytes_;
  std::string buffer_;
  bool eof_ = false;
  bool discarding_ = false;  // Inside an overlong line, seeking its '\n'.
};

/// Buffered newline framing over one socket, blocking: each ReadLine
/// returns the next line per the LineDecoder contract above (kEof is
/// the blocking spelling of "finished"). Lines are capped at
/// max_line_bytes (default 1 MiB) with the same overflow-then-resync
/// behaviour.
class LineReader {
 public:
  enum class Outcome { kLine, kEof, kCancelled, kOverflow };

  static constexpr size_t kDefaultMaxLineBytes =
      LineDecoder::kDefaultMaxLineBytes;

  explicit LineReader(int fd, size_t max_line_bytes = kDefaultMaxLineBytes)
      : fd_(fd), decoder_(max_line_bytes) {}

  /// Blocks for the next line. `cancelled` (optional) is polled every
  /// poll_interval_ms; when it returns true the read gives up with
  /// kCancelled (bytes already buffered are kept for a later call).
  Result<Outcome> ReadLine(std::string* line,
                           const std::function<bool()>& cancelled = nullptr,
                           int poll_interval_ms = 100);

 private:
  int fd_;
  LineDecoder decoder_;
};

}  // namespace rwdom

#endif  // RWDOM_UTIL_SOCKET_H_
