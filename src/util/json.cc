#include "util/json.h"

#include <cmath>
#include <cstdlib>

namespace rwdom {

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ =
      std::make_shared<const std::vector<JsonValue>>(std::move(items));
  return v;
}

JsonValue JsonValue::MakeObject(std::vector<Member> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::make_shared<const std::vector<Member>>(std::move(members));
  return v;
}

bool JsonValue::bool_value() const {
  RWDOM_CHECK(is_bool()) << "JsonValue is not a bool";
  return bool_;
}

double JsonValue::number_value() const {
  RWDOM_CHECK(is_number()) << "JsonValue is not a number";
  return number_;
}

const std::string& JsonValue::string_value() const {
  RWDOM_CHECK(is_string()) << "JsonValue is not a string";
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  RWDOM_CHECK(is_array()) << "JsonValue is not an array";
  return *array_;
}

const std::vector<JsonValue::Member>& JsonValue::object() const {
  RWDOM_CHECK(is_object()) << "JsonValue is not an object";
  return *object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  RWDOM_CHECK(is_object()) << "JsonValue is not an object";
  for (const Member& member : *object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over a string_view with a byte cursor. All
// errors are InvalidArgument and carry the offending byte offset.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    RWDOM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        RWDOM_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::MakeBool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::MakeBool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::vector<JsonValue::Member> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key");
      }
      RWDOM_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after key");
      RWDOM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::MakeObject(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    while (true) {
      RWDOM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::MakeArray(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          RWDOM_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          // Surrogate pair: a high surrogate must be followed by \uDC00-
          // \uDFFF; combine into one code point before UTF-8 encoding.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!ConsumeLiteral("\\u")) {
              return Error("lone high surrogate");
            }
            RWDOM_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          --pos_;
          return Error("invalid escape character");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
      // Sign consumed; digits checked below.
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      pos_ = start;
      return Error("invalid value");
    }
    // JSON forbids leading zeros ("01"); strtod would accept them.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("number out of range");
    }
    return JsonValue::MakeNumber(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace rwdom
