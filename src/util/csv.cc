#include "util/csv.h"

#include <cstdio>
#include <fstream>

#include "util/logging.h"
#include "util/strings.h"

namespace rwdom {

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  if (!header_.empty()) {
    RWDOM_CHECK_EQ(row.size(), header_.size())
        << "CSV row width mismatch: got " << row.size() << ", want "
        << header_.size();
  }
  rows_.push_back(std::move(row));
}

void CsvWriter::AddNumericRow(const std::vector<double>& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (double v : row) fields.push_back(StrFormat("%.6g", v));
  AddRow(std::move(fields));
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto emit_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += CsvEscape(row[i]);
    }
    out.push_back('\n');
  };
  if (!header_.empty()) emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file << ToString();
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace rwdom
