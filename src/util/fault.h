// Deterministic fault injection for robustness tests.
//
// A *fault site* is a named point in production code where an operator
// (or a test) can make the next operation fail with a chosen errno —
// without touching the code under test. Sites are plumbed as a single
// call:
//
//   RWDOM_RETURN_IF_ERROR(FaultPoint("persist.write"));
//
// When nothing is armed, FaultPoint is one relaxed atomic load and a
// branch — cheap enough to leave in release builds, which is the point:
// the binary you fault-test is the binary you ship.
//
// Arming, from the environment or programmatically:
//
//   RWDOM_FAULTS=persist.write:1:ENOSPC,socket.send:%10:EPIPE
//   ArmFault("persist.rename", FaultSpec{.nth = 2, .error = EIO});
//
// Trigger syntax per site: `N` fires exactly once, on the Nth hit
// (1-based); `%K` fires on every Kth hit, forever. The optional third
// field is a symbolic errno (EIO, ENOSPC, EPIPE, ECONNRESET, EMSGSIZE,
// ENOMEM) or a raw integer; default EIO. The special action `stall`
// sleeps the hitting thread for ~30s and then succeeds — it widens the
// window between "tmp file exists" and "rename published" so crash
// tests can SIGKILL a process mid-checkpoint deterministically.
//
// Counting is per-site and process-global, so an injection schedule plus
// a deterministic workload yields the same failure sequence every run,
// including under TSan. Fired faults surface as Status::IoError with an
// `injected fault at <site>` message; layers above map that to their own
// typed error exactly as they would a real EIO.
#ifndef RWDOM_UTIL_FAULT_H_
#define RWDOM_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rwdom {

/// Registered fault sites. Arming an unknown site is an error — the
/// catalog doubles as documentation and keeps specs typo-proof.
/// (See DESIGN.md §6 for what each site guards.)
inline constexpr std::string_view kFaultSites[] = {
    "persist.open",    // snapshot tmp-file creation
    "persist.write",   // snapshot body write/flush/close
    "persist.rename",  // atomic publish of a finished snapshot
    "socket.send",     // any SendAll/SendAllWithin on a connection
    "index.build",     // index construction inside QueryContext::GetIndex
};

struct FaultSpec {
  /// If `every > 0`: fire on every `every`-th hit. Otherwise fire once,
  /// on hit number `nth` (1-based).
  int64_t nth = 1;
  int64_t every = 0;
  int error = 5 /*EIO*/;
  /// Sleep ~30s instead of failing (crash-test race widener).
  bool stall = false;
};

/// True while any site is armed (single relaxed load).
inline std::atomic<bool>& FaultsArmedFlag() {
  static std::atomic<bool> armed{false};
  return armed;
}

namespace fault_internal {
/// Slow path: count the hit and fail/stall if the spec says so.
Status Fire(std::string_view site);
}  // namespace fault_internal

/// The per-site hook. Returns OK unless `site` is armed and due.
inline Status FaultPoint(std::string_view site) {
  if (!FaultsArmedFlag().load(std::memory_order_relaxed)) return Status::OK();
  return fault_internal::Fire(site);
}

/// Arm `site` with `spec`. Replaces any existing spec and resets the hit
/// counter. Fails on unknown site names.
Status ArmFault(std::string_view site, const FaultSpec& spec);

/// Disarm one site (keeps its hit counter) / all sites (resets all).
void DisarmFault(std::string_view site);
void ClearFaults();

/// Parse and arm a full schedule: `site:trigger[:errno][,site:...]`.
/// All-or-nothing — on parse failure nothing is armed.
Status ArmFaultsFromSpec(std::string_view spec);

/// Arm from $RWDOM_FAULTS if set. Called once at process start (from
/// main); safe to call again. Returns what ArmFaultsFromSpec returned,
/// or OK when the variable is unset/empty.
Status ArmFaultsFromEnv();

/// How many times `site` has been hit (armed or not since last arm).
int64_t FaultHitCount(std::string_view site);

/// How many times `site` actually fired (failed or stalled).
int64_t FaultFireCount(std::string_view site);

}  // namespace rwdom

#endif  // RWDOM_UTIL_FAULT_H_
