#include "util/simd.h"

#include <cstdlib>
#include <cstring>

#include "util/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#define RWDOM_SIMD_X86 1
#include <immintrin.h>
#else
#define RWDOM_SIMD_X86 0
#endif

namespace rwdom {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels: the semantics every vector variant must match
// bit for bit (trivially so — all accumulation is integral).
// ---------------------------------------------------------------------------

int64_t TallySavingsScalar(const int32_t* d_row, const int32_t* ids,
                           const int32_t* weights, int32_t count) {
  int64_t total = 0;
  for (int32_t k = 0; k < count; ++k) {
    const int32_t diff = d_row[ids[k]] - weights[k];
    if (diff > 0) total += diff;
  }
  return total;
}

int64_t TallyZerosScalar(const int32_t* d_row, const int32_t* ids,
                         int32_t count) {
  int64_t total = 0;
  for (int32_t k = 0; k < count; ++k) {
    if (d_row[ids[k]] == 0) ++total;
  }
  return total;
}

FirstHitTally TallyFirstHitsScalar(const uint8_t* flags, const int32_t* rows,
                                   int64_t num_rows, int32_t row_len) {
  FirstHitTally tally;
  for (int64_t r = 0; r < num_rows; ++r) {
    const int32_t* row = rows + r * row_len;
    for (int32_t t = 0; t < row_len; ++t) {
      if (flags[row[t]] != 0) {
        ++tally.hits;
        tally.hit_time_sum += t;
        break;
      }
    }
  }
  return tally;
}

#if RWDOM_SIMD_X86

// ---------------------------------------------------------------------------
// SSE4.2: 4-wide with scalar gathers (no gather instruction before AVX2).
// Full 16-byte lanes only; the tail runs scalar, so no masked loads and
// nothing for UBSan/ASan to object to.
// ---------------------------------------------------------------------------

__attribute__((target("sse4.2"))) int64_t TallySavingsSse42(
    const int32_t* d_row, const int32_t* ids, const int32_t* weights,
    int32_t count) {
  __m128i acc = _mm_setzero_si128();  // 2 x int64
  const __m128i zero = _mm_setzero_si128();
  int32_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m128i dv =
        _mm_set_epi32(d_row[ids[k + 3]], d_row[ids[k + 2]],
                      d_row[ids[k + 1]], d_row[ids[k]]);
    const __m128i wv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(weights + k));
    // Saved hops per posting, clamped at 0; widen to int64 before
    // accumulating so arbitrarily long scans cannot overflow a lane.
    const __m128i pos = _mm_max_epi32(_mm_sub_epi32(dv, wv), zero);
    acc = _mm_add_epi64(acc, _mm_cvtepi32_epi64(pos));
    acc = _mm_add_epi64(acc,
                        _mm_cvtepi32_epi64(_mm_srli_si128(pos, 8)));
  }
  int64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  int64_t total = lanes[0] + lanes[1];
  for (; k < count; ++k) {
    const int32_t diff = d_row[ids[k]] - weights[k];
    if (diff > 0) total += diff;
  }
  return total;
}

__attribute__((target("sse4.2"))) int64_t TallyZerosSse42(
    const int32_t* d_row, const int32_t* ids, int32_t count) {
  const __m128i zero = _mm_setzero_si128();
  int64_t total = 0;
  int32_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m128i dv =
        _mm_set_epi32(d_row[ids[k + 3]], d_row[ids[k + 2]],
                      d_row[ids[k + 1]], d_row[ids[k]]);
    const int mask =
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(dv, zero)));
    total += __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; k < count; ++k) {
    if (d_row[ids[k]] == 0) ++total;
  }
  return total;
}

// ---------------------------------------------------------------------------
// AVX2: 8-wide with hardware gathers. TallyFirstHits walks 8 rows in
// lockstep down the time axis — the flag bytes are gathered as 4-byte
// lanes (hence kFlagsPadBytes) and each lane latches the first hit time.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) int64_t TallySavingsAvx2(
    const int32_t* d_row, const int32_t* ids, const int32_t* weights,
    int32_t count) {
  __m256i acc = _mm256_setzero_si256();  // 4 x int64
  const __m256i zero = _mm256_setzero_si256();
  int32_t k = 0;
  for (; k + 8 <= count; k += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + k));
    const __m256i dv = _mm256_i32gather_epi32(d_row, idx, 4);
    const __m256i wv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(weights + k));
    const __m256i pos = _mm256_max_epi32(_mm256_sub_epi32(dv, wv), zero);
    acc = _mm256_add_epi64(
        acc, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(pos)));
    acc = _mm256_add_epi64(
        acc, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(pos, 1)));
  }
  int64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; k < count; ++k) {
    const int32_t diff = d_row[ids[k]] - weights[k];
    if (diff > 0) total += diff;
  }
  return total;
}

__attribute__((target("avx2"))) int64_t TallyZerosAvx2(const int32_t* d_row,
                                                       const int32_t* ids,
                                                       int32_t count) {
  const __m256i zero = _mm256_setzero_si256();
  int64_t total = 0;
  int32_t k = 0;
  for (; k + 8 <= count; k += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + k));
    const __m256i dv = _mm256_i32gather_epi32(d_row, idx, 4);
    const int mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(dv, zero)));
    total += __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; k < count; ++k) {
    if (d_row[ids[k]] == 0) ++total;
  }
  return total;
}

__attribute__((target("avx2"))) FirstHitTally TallyFirstHitsAvx2(
    const uint8_t* flags, const int32_t* rows, int64_t num_rows,
    int32_t row_len) {
  FirstHitTally tally;
  const __m256i byte_mask = _mm256_set1_epi32(0xFF);
  const __m256i sentinel = _mm256_set1_epi32(row_len);
  int64_t r = 0;
  for (; r + 8 <= num_rows; r += 8) {
    // Lane l walks row r + l; `first` latches the earliest flagged t and
    // stays at the row_len sentinel for rows that never hit.
    __m256i row_start = _mm256_mullo_epi32(
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int32_t>(r)),
                         _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7)),
        _mm256_set1_epi32(row_len));
    __m256i first = sentinel;
    for (int32_t t = 0; t < row_len; ++t) {
      const __m256i idx =
          _mm256_add_epi32(row_start, _mm256_set1_epi32(t));
      const __m256i node = _mm256_i32gather_epi32(rows, idx, 4);
      // Gather one flag byte per lane (reads up to 3 bytes past the last
      // node's flag — the kFlagsPadBytes contract) and mask to 8 bits.
      const __m256i flag = _mm256_and_si256(
          _mm256_i32gather_epi32(reinterpret_cast<const int32_t*>(flags),
                                 node, 1),
          byte_mask);
      const __m256i unseen = _mm256_cmpeq_epi32(first, sentinel);
      const __m256i hit_now = _mm256_andnot_si256(
          _mm256_cmpeq_epi32(flag, _mm256_setzero_si256()), unseen);
      first = _mm256_blendv_epi8(first, _mm256_set1_epi32(t), hit_now);
      // All lanes latched: the rest of the rows cannot change anything.
      const __m256i still_unseen = _mm256_cmpeq_epi32(first, sentinel);
      if (_mm256_testz_si256(still_unseen, still_unseen)) break;
    }
    int32_t first_lanes[8];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(first_lanes), first);
    for (int l = 0; l < 8; ++l) {
      if (first_lanes[l] < row_len) {
        ++tally.hits;
        tally.hit_time_sum += first_lanes[l];
      }
    }
  }
  const FirstHitTally tail =
      TallyFirstHitsScalar(flags, rows + r * row_len, num_rows - r, row_len);
  tally.hits += tail.hits;
  tally.hit_time_sum += tail.hit_time_sum;
  return tally;
}

#endif  // RWDOM_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch: one table of function pointers, bound at first use from
// RWDOM_SIMD clamped to CPU support, rebindable for tests.
// ---------------------------------------------------------------------------

struct KernelTable {
  SimdLevel level = SimdLevel::kScalar;
  int64_t (*savings)(const int32_t*, const int32_t*, const int32_t*,
                     int32_t) = &TallySavingsScalar;
  int64_t (*zeros)(const int32_t*, const int32_t*,
                   int32_t) = &TallyZerosScalar;
  FirstHitTally (*first_hits)(const uint8_t*, const int32_t*, int64_t,
                              int32_t) = &TallyFirstHitsScalar;
};

KernelTable MakeTable(SimdLevel level) {
  KernelTable table;
  table.level = level;
#if RWDOM_SIMD_X86
  if (level == SimdLevel::kSse42) {
    table.savings = &TallySavingsSse42;
    table.zeros = &TallyZerosSse42;
    // No pre-AVX2 gather: the batched first-hit scan stays scalar here.
    table.first_hits = &TallyFirstHitsScalar;
  } else if (level == SimdLevel::kAvx2) {
    table.savings = &TallySavingsAvx2;
    table.zeros = &TallyZerosAvx2;
    table.first_hits = &TallyFirstHitsAvx2;
  }
#endif
  return table;
}

SimdLevel ClampToCpu(SimdLevel level) {
  const SimdLevel max = MaxSupportedSimdLevel();
  return level > max ? max : level;
}

SimdLevel LevelFromEnv() {
  const char* env = std::getenv("RWDOM_SIMD");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "auto") == 0) {
    return MaxSupportedSimdLevel();
  }
  if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(env, "sse42") == 0 || std::strcmp(env, "sse4.2") == 0) {
    return ClampToCpu(SimdLevel::kSse42);
  }
  if (std::strcmp(env, "avx2") == 0) return ClampToCpu(SimdLevel::kAvx2);
  RWDOM_LOG(WARNING) << "unknown RWDOM_SIMD value \"" << env
                     << "\" (want scalar|sse42|avx2|auto); using auto";
  return MaxSupportedSimdLevel();
}

KernelTable& ActiveTable() {
  static KernelTable table = MakeTable(LevelFromEnv());
  return table;
}

}  // namespace

SimdLevel MaxSupportedSimdLevel() {
#if RWDOM_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse42;
#endif
  return SimdLevel::kScalar;
}

SimdLevel ActiveSimdLevel() { return ActiveTable().level; }

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse42:
      return "sse42";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel SetSimdLevelForTest(SimdLevel level) {
  ActiveTable() = MakeTable(ClampToCpu(level));
  return ActiveTable().level;
}

int64_t TallySavings(const int32_t* d_row, const int32_t* ids,
                     const int32_t* weights, int32_t count) {
  return ActiveTable().savings(d_row, ids, weights, count);
}

int64_t TallyZeros(const int32_t* d_row, const int32_t* ids, int32_t count) {
  return ActiveTable().zeros(d_row, ids, count);
}

FirstHitTally TallyFirstHits(const uint8_t* flags, const int32_t* rows,
                             int64_t num_rows, int32_t row_len) {
  return ActiveTable().first_hits(flags, rows, num_rows, row_len);
}

}  // namespace rwdom
