#include "util/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/logging.h"
#include "util/strings.h"

namespace rwdom {
namespace {

// A worker pool that executes one batch of tasks at a time. Workers sleep
// on a condition variable between batches, so an idle pool costs nothing on
// the scheduler. The pool is created lazily on the first parallel region
// with more than one thread and resized when SetNumThreads changes.
class WorkerPool {
 public:
  explicit WorkerPool(int num_workers) {
    workers_.reserve(static_cast<size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    wake_workers_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Runs tasks[0..n) across the workers and the calling thread; returns
  // once all have finished. Only one batch may be in flight at a time
  // (nested regions run inline and never reach the pool).
  void RunBatch(const std::vector<std::function<void()>>& tasks) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_ = &tasks;
      next_task_ = 0;
      pending_ = tasks.size();
      ++generation_;
    }
    wake_workers_.notify_all();
    DrainTasks();
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [this] { return pending_ == 0; });
    batch_ = nullptr;
  }

 private:
  void DrainTasks() {
    for (;;) {
      size_t task;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (batch_ == nullptr || next_task_ >= batch_->size()) return;
        task = next_task_++;
      }
      (*batch_)[task]();
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) batch_done_.notify_all();
    }
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_workers_.wait(lock, [&] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
      }
      DrainTasks();
    }
  }

  std::mutex mu_;
  std::condition_variable wake_workers_;
  std::condition_variable batch_done_;
  std::vector<std::thread> workers_;
  const std::vector<std::function<void()>>* batch_ = nullptr;
  size_t next_task_ = 0;
  size_t pending_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

int DefaultNumThreads() {
  if (const char* env = std::getenv("RWDOM_THREADS")) {
    auto parsed = ParseInt64(env);
    if (parsed.ok() && *parsed >= 1) {
      return static_cast<int>(std::min<int64_t>(*parsed, 1024));
    }
    RWDOM_LOG(WARNING) << "ignoring invalid RWDOM_THREADS=" << env;
  }
  return HardwareThreads();
}

int& ThreadCount() {
  static int count = DefaultNumThreads();
  return count;
}

// The pool keeps NumThreads() - 1 workers (the calling thread is the
// remaining executor). Guarded by a mutex so concurrent first uses are
// safe; resize only happens between batches (see SetNumThreads contract).
std::mutex g_pool_mu;
WorkerPool* g_pool = nullptr;

WorkerPool* PoolWithWorkers(int num_workers) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool != nullptr && g_pool->num_workers() != num_workers) {
    delete g_pool;
    g_pool = nullptr;
  }
  if (g_pool == nullptr) g_pool = new WorkerPool(num_workers);
  return g_pool;
}

// True while the current thread is inside a parallel region; nested
// regions run inline to avoid deadlocking the single shared pool.
thread_local bool tls_in_parallel_region = false;

}  // namespace

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int NumThreads() { return ThreadCount(); }

void SetNumThreads(int n) {
  RWDOM_CHECK_GE(n, 0) << "thread count must be >= 1 (or 0 for default)";
  ThreadCount() = n == 0 ? DefaultNumThreads() : n;
}

int MaxChunks(int64_t range_size) {
  if (range_size <= 0) return 0;
  return static_cast<int>(
      std::min<int64_t>(range_size, static_cast<int64_t>(NumThreads())));
}

void ParallelForChunks(
    int64_t begin, int64_t end,
    const std::function<void(int chunk, int64_t chunk_begin,
                             int64_t chunk_end)>& body) {
  RWDOM_DCHECK_LE(begin, end);
  const int64_t range = end - begin;
  if (range <= 0) return;
  const int chunks = MaxChunks(range);

  if (chunks == 1 || tls_in_parallel_region) {
    body(0, begin, end);
    return;
  }

  // Serialize top-level batches: the pool runs one batch at a time, so a
  // second user thread entering here waits for the first batch to drain
  // instead of corrupting the shared batch state.
  static std::mutex batch_mu;
  std::lock_guard<std::mutex> batch_lock(batch_mu);

  // Static chunking: chunk c covers [begin + c*base + min(c, rem), ...),
  // sizes differing by at most one element.
  const int64_t base = range / chunks;
  const int64_t rem = range % chunks;
  std::vector<std::exception_ptr> errors(static_cast<size_t>(chunks));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(chunks));
  for (int c = 0; c < chunks; ++c) {
    const int64_t chunk_begin = begin + c * base + std::min<int64_t>(c, rem);
    const int64_t chunk_end = chunk_begin + base + (c < rem ? 1 : 0);
    tasks.push_back([&body, &errors, c, chunk_begin, chunk_end] {
      tls_in_parallel_region = true;
      try {
        body(c, chunk_begin, chunk_end);
      } catch (...) {
        errors[static_cast<size_t>(c)] = std::current_exception();
      }
      tls_in_parallel_region = false;
    });
  }
  PoolWithWorkers(NumThreads() - 1)->RunBatch(tasks);
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t i)>& body) {
  ParallelForChunks(begin, end,
                    [&body](int, int64_t chunk_begin, int64_t chunk_end) {
                      for (int64_t i = chunk_begin; i < chunk_end; ++i) {
                        body(i);
                      }
                    });
}

}  // namespace rwdom
