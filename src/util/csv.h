// Tiny CSV writer used by the experiment harness to dump figure series for
// external plotting. Values are quoted only when necessary (comma, quote, or
// newline present).
#ifndef RWDOM_UTIL_CSV_H_
#define RWDOM_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace rwdom {

/// Accumulates rows in memory; WriteToFile emits the whole table at once.
class CsvWriter {
 public:
  /// `header` may be empty for headerless output.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row. Row length must match the header length when a header
  /// was supplied.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with %.6g.
  void AddNumericRow(const std::vector<double>& row);

  /// Serializes to CSV text.
  std::string ToString() const;

  /// Writes the table to `path`, overwriting.
  Status WriteToFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a single CSV field per RFC 4180.
std::string CsvEscape(const std::string& field);

}  // namespace rwdom

#endif  // RWDOM_UTIL_CSV_H_
