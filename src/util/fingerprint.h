// Content fingerprinting for persistence: a streaming 64-bit FNV-1a
// hasher. Used for the substrate fingerprint inside ArtifactKey (the
// stale-snapshot guard of the persist layer) and for the per-section
// checksums of the on-disk index snapshot format.
//
// This is a stability contract, not just a convenience: the digest of a
// byte sequence must never change across releases, or every committed
// snapshot and every baseline fingerprint silently invalidates. Do not
// swap the algorithm or constants; add a new format version instead.
#ifndef RWDOM_UTIL_FINGERPRINT_H_
#define RWDOM_UTIL_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace rwdom {

/// Streaming FNV-1a (64-bit). Feed bytes in any chunking; the digest is a
/// pure function of the concatenated byte sequence.
class Fingerprint {
 public:
  static constexpr uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr uint64_t kPrime = 1099511628211ull;

  void Update(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= kPrime;
    }
  }

  /// Hashes the object representation of a trivially copyable value.
  /// Callers fix width and signedness explicitly (the digest depends on
  /// them), so feed int32_t/int64_t/uint64_t/double — never int/size_t.
  template <typename T>
  void UpdatePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Update(&value, sizeof(T));
  }

  void UpdateString(std::string_view text) {
    const uint64_t size = text.size();
    UpdatePod(size);  // Length-prefixed so "ab","c" != "a","bc".
    Update(text.data(), text.size());
  }

  uint64_t Digest() const { return state_; }

 private:
  uint64_t state_ = kOffsetBasis;
};

/// One-shot digest of a byte range.
inline uint64_t FingerprintBytes(const void* data, size_t size) {
  Fingerprint fp;
  fp.Update(data, size);
  return fp.Digest();
}

}  // namespace rwdom

#endif  // RWDOM_UTIL_FINGERPRINT_H_
