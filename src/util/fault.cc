#include "util/fault.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace rwdom {
namespace {

struct SiteState {
  FaultSpec spec;
  bool armed = false;
  int64_t hits = 0;
  int64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  // Keyed by the catalog entries; populated lazily on first touch.
  std::map<std::string, SiteState, std::less<>> sites;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

bool KnownSite(std::string_view site) {
  for (std::string_view known : kFaultSites) {
    if (known == site) return true;
  }
  return false;
}

void RecomputeArmedFlag(Registry& registry) {
  bool any = false;
  for (const auto& [_, state] : registry.sites) {
    if (state.armed) {
      any = true;
      break;
    }
  }
  FaultsArmedFlag().store(any, std::memory_order_relaxed);
}

// Symbolic errno names accepted in RWDOM_FAULTS specs. Raw integers are
// also accepted; this list just covers the failures worth simulating.
bool ParseErrno(std::string_view text, int* out) {
  static constexpr std::pair<std::string_view, int> kNames[] = {
      {"EIO", EIO},           {"ENOSPC", ENOSPC},
      {"EPIPE", EPIPE},       {"ECONNRESET", ECONNRESET},
      {"EMSGSIZE", EMSGSIZE}, {"ENOMEM", ENOMEM},
      {"EDQUOT", EDQUOT},     {"ETIMEDOUT", ETIMEDOUT},
  };
  for (const auto& [name, value] : kNames) {
    if (name == text) {
      *out = value;
      return true;
    }
  }
  int value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  if (text.empty() || value <= 0) return false;
  *out = value;
  return true;
}

Status ParseOneFault(std::string_view entry, std::string* site,
                     FaultSpec* spec) {
  std::vector<std::string_view> fields;
  while (!entry.empty()) {
    const size_t colon = entry.find(':');
    fields.push_back(entry.substr(0, colon));
    if (colon == std::string_view::npos) break;
    entry.remove_prefix(colon + 1);
  }
  if (fields.size() < 2 || fields.size() > 3) {
    return Status::InvalidArgument(
        "fault spec entry must be site:trigger[:errno]");
  }
  if (!KnownSite(fields[0])) {
    return Status::InvalidArgument("unknown fault site '" +
                                   std::string(fields[0]) + "'");
  }
  *site = std::string(fields[0]);

  *spec = FaultSpec{};
  std::string_view trigger = fields[1];
  bool periodic = false;
  if (!trigger.empty() && trigger.front() == '%') {
    periodic = true;
    trigger.remove_prefix(1);
  }
  int64_t count = 0;
  for (char c : trigger) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad fault trigger '" +
                                     std::string(fields[1]) + "'");
    }
    count = count * 10 + (c - '0');
  }
  if (trigger.empty() || count <= 0) {
    return Status::InvalidArgument("bad fault trigger '" +
                                   std::string(fields[1]) + "'");
  }
  if (periodic) {
    spec->every = count;
  } else {
    spec->nth = count;
  }

  if (fields.size() == 3) {
    if (fields[2] == "stall") {
      spec->stall = true;
    } else if (!ParseErrno(fields[2], &spec->error)) {
      return Status::InvalidArgument("bad fault errno '" +
                                     std::string(fields[2]) + "'");
    }
  }
  return Status::OK();
}

}  // namespace

namespace fault_internal {

Status Fire(std::string_view site) {
  bool due = false;
  bool stall = false;
  int error = EIO;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.sites.find(site);
    if (it == registry.sites.end() || !it->second.armed) return Status::OK();
    SiteState& state = it->second;
    ++state.hits;
    if (state.spec.every > 0) {
      due = (state.hits % state.spec.every) == 0;
    } else if (state.hits == state.spec.nth) {
      due = true;
      state.armed = false;  // one-shot
      RecomputeArmedFlag(registry);
    }
    if (due) {
      ++state.fires;
      stall = state.spec.stall;
      error = state.spec.error;
    }
  }
  if (!due) return Status::OK();
  if (stall) {
    // Long enough that a crash test reliably lands its SIGKILL inside the
    // window; short enough that a leaked stall cannot hang CI forever.
    std::this_thread::sleep_for(std::chrono::seconds(30));
    return Status::OK();
  }
  return Status::IoError("injected fault at " + std::string(site) + " (" +
                         std::strerror(error) + ")");
}

}  // namespace fault_internal

Status ArmFault(std::string_view site, const FaultSpec& spec) {
  if (!KnownSite(site)) {
    return Status::InvalidArgument("unknown fault site '" + std::string(site) +
                                   "'");
  }
  if (spec.every < 0 || (spec.every == 0 && spec.nth <= 0)) {
    return Status::InvalidArgument("fault trigger must be positive");
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  SiteState& state = registry.sites[std::string(site)];
  state.spec = spec;
  state.armed = true;
  state.hits = 0;
  FaultsArmedFlag().store(true, std::memory_order_relaxed);
  return Status::OK();
}

void DisarmFault(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  if (it != registry.sites.end()) it->second.armed = false;
  RecomputeArmedFlag(registry);
}

void ClearFaults() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.sites.clear();
  FaultsArmedFlag().store(false, std::memory_order_relaxed);
}

Status ArmFaultsFromSpec(std::string_view spec) {
  // Two passes: validate everything, then arm, so a typo arms nothing.
  std::vector<std::pair<std::string, FaultSpec>> parsed;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    std::string_view entry = rest.substr(0, comma);
    if (!entry.empty()) {
      std::string site;
      FaultSpec one;
      RWDOM_RETURN_IF_ERROR(ParseOneFault(entry, &site, &one));
      parsed.emplace_back(std::move(site), one);
    }
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  for (const auto& [site, one] : parsed) {
    RWDOM_RETURN_IF_ERROR(ArmFault(site, one));
  }
  return Status::OK();
}

Status ArmFaultsFromEnv() {
  const char* env = std::getenv("RWDOM_FAULTS");
  if (env == nullptr || env[0] == '\0') return Status::OK();
  return ArmFaultsFromSpec(env);
}

int64_t FaultHitCount(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

int64_t FaultFireCount(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.fires;
}

}  // namespace rwdom
