// Shared-memory parallelism for the hot loops: a lazily created global
// thread pool plus ParallelFor / ParallelForChunks helpers with chunked
// static scheduling.
//
// Design rules, chosen so that every parallel consumer in rwdom stays
// bit-deterministic regardless of thread count:
//  * Work is split into contiguous chunks assigned statically; callers that
//    need per-task scratch key it on the chunk index.
//  * Chunk boundaries may depend on the thread count, so callers must make
//    per-item results independent of chunking (e.g. counter-derived RNG
//    streams) and reduce in item order.
//  * Exceptions thrown by the body are captured and rethrown (the first
//    one, by chunk order) on the calling thread.
//  * Nested parallel regions execute inline on the calling thread, so the
//    helpers are safe to use inside library code without deadlock risk.
//  * The pool runs one batch at a time: concurrent top-level regions from
//    different threads are serialized (the second blocks until the first
//    drains), never interleaved.
//
// The thread count defaults to the RWDOM_THREADS environment variable when
// set (>= 1), else the hardware concurrency; SetNumThreads overrides it at
// runtime (the CLI's --threads flag and the bench harness call it).
#ifndef RWDOM_UTIL_PARALLEL_H_
#define RWDOM_UTIL_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace rwdom {

/// Number of hardware threads (>= 1).
int HardwareThreads();

/// Current global thread count (>= 1).
int NumThreads();

/// Sets the global thread count: n >= 1 exact, n == 0 resets to the
/// default (RWDOM_THREADS env or hardware). Not thread-safe against
/// concurrent parallel regions; call between them.
void SetNumThreads(int n);

/// Runs body(chunk, begin, end) over disjoint contiguous chunks covering
/// [begin, end), at most NumThreads() chunks, in parallel. Chunk indices
/// are dense from 0 so callers can pre-allocate per-chunk scratch or
/// outputs. Blocks until every chunk finished; rethrows the first
/// exception (by chunk order) thrown by the body.
void ParallelForChunks(
    int64_t begin, int64_t end,
    const std::function<void(int chunk, int64_t chunk_begin,
                             int64_t chunk_end)>& body);

/// Maximum number of chunks ParallelForChunks will create for a range of
/// this size (== the per-chunk scratch/output slots a caller needs).
int MaxChunks(int64_t range_size);

/// Element-wise convenience: runs body(i) for every i in [begin, end) with
/// the same chunked static scheduling and exception semantics.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t i)>& body);

}  // namespace rwdom

#endif  // RWDOM_UTIL_PARALLEL_H_
