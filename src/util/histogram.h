// Streaming summary statistics and a simple fixed-bucket histogram. Used for
// degree distributions, hitting-time distributions, and bench reporting.
#ifndef RWDOM_UTIL_HISTOGRAM_H_
#define RWDOM_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace rwdom {

/// Online mean/variance (Welford) with min/max tracking.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over non-negative integer values with unit buckets up to
/// `max_value`; larger values go to an overflow bucket.
class IntHistogram {
 public:
  explicit IntHistogram(int64_t max_value);

  void Add(int64_t value);

  int64_t BucketCount(int64_t value) const;
  int64_t overflow_count() const { return overflow_; }
  int64_t total() const { return total_; }

  /// Smallest value v such that at least `quantile` (in [0,1]) of samples
  /// are <= v. Overflow samples count as max_value + 1.
  int64_t Quantile(double quantile) const;

  /// Multi-line textual rendering (value, count, bar) for diagnostics.
  std::string ToString(int max_rows = 20) const;

 private:
  std::vector<int64_t> buckets_;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

}  // namespace rwdom

#endif  // RWDOM_UTIL_HISTOGRAM_H_
