// Minimal leveled logging plus CHECK macros for internal invariants.
//
// RWDOM_CHECK(cond)  — always on; aborts with file:line on failure.
// RWDOM_DCHECK(cond) — debug builds only; compiles away under NDEBUG.
// RWDOM_LOG(INFO) << "message";
#ifndef RWDOM_UTIL_LOGGING_H_
#define RWDOM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace rwdom {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void DieOnCheckFailure(const char* file, int line,
                                    const char* condition,
                                    const std::string& extra);

/// Accumulates an optional message for a failed CHECK, aborts on destruction.
class CheckFailureMessage {
 public:
  CheckFailureMessage(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}
  [[noreturn]] ~CheckFailureMessage() {
    DieOnCheckFailure(file_, line_, condition_, stream_.str());
  }

  CheckFailureMessage(const CheckFailureMessage&) = delete;
  CheckFailureMessage& operator=(const CheckFailureMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace rwdom

#define RWDOM_LOG_DEBUG ::rwdom::LogLevel::kDebug
#define RWDOM_LOG_INFO ::rwdom::LogLevel::kInfo
#define RWDOM_LOG_WARNING ::rwdom::LogLevel::kWarning
#define RWDOM_LOG_ERROR ::rwdom::LogLevel::kError

#define RWDOM_LOG(severity)                                              \
  ::rwdom::internal::LogMessage(RWDOM_LOG_##severity, __FILE__, __LINE__) \
      .stream()

#define RWDOM_CHECK(condition)                                            \
  if (condition) {                                                        \
  } else /* NOLINT */                                                     \
    ::rwdom::internal::CheckFailureMessage(__FILE__, __LINE__, #condition) \
        .stream()

#define RWDOM_CHECK_EQ(a, b) RWDOM_CHECK((a) == (b))
#define RWDOM_CHECK_NE(a, b) RWDOM_CHECK((a) != (b))
#define RWDOM_CHECK_LT(a, b) RWDOM_CHECK((a) < (b))
#define RWDOM_CHECK_LE(a, b) RWDOM_CHECK((a) <= (b))
#define RWDOM_CHECK_GT(a, b) RWDOM_CHECK((a) > (b))
#define RWDOM_CHECK_GE(a, b) RWDOM_CHECK((a) >= (b))

#ifdef NDEBUG
#define RWDOM_DCHECK(condition) \
  if (true) {                   \
  } else /* NOLINT */           \
    ::rwdom::internal::NullStream()
#else
#define RWDOM_DCHECK(condition) RWDOM_CHECK(condition)
#endif

#define RWDOM_DCHECK_EQ(a, b) RWDOM_DCHECK((a) == (b))
#define RWDOM_DCHECK_LT(a, b) RWDOM_DCHECK((a) < (b))
#define RWDOM_DCHECK_LE(a, b) RWDOM_DCHECK((a) <= (b))
#define RWDOM_DCHECK_GE(a, b) RWDOM_DCHECK((a) >= (b))

#endif  // RWDOM_UTIL_LOGGING_H_
