// Aligned plain-text tables for benchmark output — the stdout analogue of
// the paper's figures, one row per sweep point.
#ifndef RWDOM_UTIL_TABLE_PRINTER_H_
#define RWDOM_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace rwdom {

/// Collects rows, then renders them with per-column alignment.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Row width must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience for numeric rows; doubles formatted with %.4g.
  void AddMixedRow(const std::string& label, const std::vector<double>& row);

  std::string ToString() const;

  /// Writes ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rwdom

#endif  // RWDOM_UTIL_TABLE_PRINTER_H_
