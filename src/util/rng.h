// Deterministic, fast pseudo-random number generation.
//
// Rng wraps xoshiro256** (Blackman & Vigna) seeded through SplitMix64, the
// recommended seeding procedure. Every randomized component in rwdom takes an
// explicit 64-bit seed so that experiments are reproducible bit-for-bit.
#ifndef RWDOM_UTIL_RNG_H_
#define RWDOM_UTIL_RNG_H_

#include <array>
#include <cstdint>

#include "util/logging.h"

namespace rwdom {

/// SplitMix64 step: returns the next value and advances `state`. Used for
/// seeding and for cheap stateless hashing of (seed, index) pairs.
uint64_t SplitMix64(uint64_t* state);

/// Mixes two 64-bit values into one; used to derive independent per-node or
/// per-replicate streams from a master seed.
uint64_t MixSeeds(uint64_t a, uint64_t b);

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds via four SplitMix64 draws, per the reference implementation.
  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64 bits.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless unbiased method.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

 private:
  std::array<uint64_t, 4> s_;
};

}  // namespace rwdom

#endif  // RWDOM_UTIL_RNG_H_
