// Small string helpers used by parsers and table printers.
#ifndef RWDOM_UTIL_STRINGS_H_
#define RWDOM_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rwdom {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on `delim`, keeping empty fields.
std::vector<std::string_view> SplitString(std::string_view s, char delim);

/// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

/// Parses a base-10 signed 64-bit integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a double; the whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats `n` with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatWithCommas(int64_t n);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Levenshtein edit distance (insert/delete/substitute, each cost 1).
/// O(|a|·|b|) time, O(min) space.
size_t EditDistance(std::string_view a, std::string_view b);

/// The candidate closest to `name` by edit distance, or "" when the best
/// distance exceeds `max_distance` (ties break toward the earlier
/// candidate). Drives the CLI's "did you mean" suggestions.
std::string ClosestMatch(std::string_view name,
                         const std::vector<std::string>& candidates,
                         size_t max_distance = 3);

}  // namespace rwdom

#endif  // RWDOM_UTIL_STRINGS_H_
