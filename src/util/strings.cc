#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rwdom {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> SplitString(std::string_view s, char delim) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> parts;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) parts.push_back(s.substr(start, i - start));
  }
  return parts;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: " + buf);
  }
  return value;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatWithCommas(int64_t n) {
  std::string digits = std::to_string(n < 0 ? -n : n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (n < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row DP; row[j] = distance(a[0..i), b[0..j)).
  std::vector<size_t> row(a.size() + 1);
  for (size_t j = 0; j <= a.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= b.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= a.size(); ++j) {
      size_t substitute = diagonal + (a[j - 1] == b[i - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[a.size()];
}

std::string ClosestMatch(std::string_view name,
                         const std::vector<std::string>& candidates,
                         size_t max_distance) {
  std::string best;
  size_t best_distance = max_distance + 1;
  for (const std::string& candidate : candidates) {
    size_t distance = EditDistance(name, candidate);
    if (distance < best_distance) {
      best_distance = distance;
      best = candidate;
    }
  }
  return best;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace rwdom
