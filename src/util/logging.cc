#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace rwdom {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_log_level.load()) return;
  std::string line = stream_.str();
  std::fprintf(stderr, "%s\n", line.c_str());
}

void DieOnCheckFailure(const char* file, int line, const char* condition,
                       const std::string& extra) {
  std::fprintf(stderr, "FATAL %s:%d: CHECK failed: %s%s%s\n", file, line,
               condition, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace rwdom
