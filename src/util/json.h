// Minimal JSON support: a streaming writer and a strict parser.
//
// The writer started life as the bench drivers' machine-readable output
// (BENCH_*.json artifacts need nesting that CSV cannot carry); the service
// layer now also uses it for `--format=json` CLI output. The parser exists
// for `rwdom batch` JSONL scripts. Both are deliberately tiny: objects,
// arrays, strings, numbers, bools, null — RFC 8259 essentials, nothing
// more (no comments, no trailing commas, no NaN/Inf).
//
// Writer usage:
//   JsonWriter json;
//   json.BeginObject();
//   json.Key("bench").String("parallel_scaling");
//   json.Key("series").BeginArray();
//   json.BeginObject().Key("threads").Int(4).EndObject();
//   json.EndArray().EndObject();
//   json.ToString();  // {"bench":"parallel_scaling","series":[{"threads":4}]}
#ifndef RWDOM_UTIL_JSON_H_
#define RWDOM_UTIL_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/status.h"
#include "util/strings.h"

namespace rwdom {

class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    BeginValue();
    out_ += '{';
    stack_.push_back(State::kFirstInObject);
    return *this;
  }

  JsonWriter& EndObject() {
    RWDOM_CHECK(!stack_.empty() && (stack_.back() == State::kFirstInObject ||
                                    stack_.back() == State::kInObject))
        << "EndObject outside an object";
    stack_.pop_back();
    out_ += '}';
    return *this;
  }

  JsonWriter& BeginArray() {
    BeginValue();
    out_ += '[';
    stack_.push_back(State::kFirstInArray);
    return *this;
  }

  JsonWriter& EndArray() {
    RWDOM_CHECK(!stack_.empty() && (stack_.back() == State::kFirstInArray ||
                                    stack_.back() == State::kInArray))
        << "EndArray outside an array";
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  /// Starts an object member; must be followed by exactly one value.
  JsonWriter& Key(const std::string& name) {
    RWDOM_CHECK(!pending_key_) << "Key after Key without a value";
    RWDOM_CHECK(!stack_.empty() && (stack_.back() == State::kFirstInObject ||
                                    stack_.back() == State::kInObject))
        << "Key outside an object";
    if (stack_.back() == State::kInObject) out_ += ',';
    stack_.back() = State::kInObject;
    AppendEscaped(name);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& String(const std::string& value) {
    BeginValue();
    AppendEscaped(value);
    return *this;
  }

  JsonWriter& Int(int64_t value) {
    BeginValue();
    out_ += std::to_string(value);
    return *this;
  }

  /// %.9g keeps timings readable while preserving sub-microsecond detail.
  JsonWriter& Number(double value) {
    BeginValue();
    out_ += StrFormat("%.9g", value);
    return *this;
  }

  JsonWriter& Bool(bool value) {
    BeginValue();
    out_ += value ? "true" : "false";
    return *this;
  }

  /// Splices `json` — which must itself be one complete serialized JSON
  /// value — verbatim where a value is expected. For embedding already-
  /// rendered documents (e.g. proxied backend responses) without a
  /// parse/re-serialize round trip.
  JsonWriter& Raw(std::string_view json) {
    BeginValue();
    out_ += json;
    return *this;
  }

  /// Serialized document; every Begin* must have been matched.
  std::string ToString() const {
    RWDOM_CHECK(stack_.empty() && !pending_key_)
        << "unbalanced JSON document";
    return out_;
  }

 private:
  enum class State { kFirstInObject, kInObject, kFirstInArray, kInArray };

  // Emits the comma/placement bookkeeping owed before any new value.
  void BeginValue() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (stack_.empty()) {
      RWDOM_CHECK(out_.empty()) << "only one top-level JSON value allowed";
      return;
    }
    RWDOM_CHECK(stack_.back() == State::kFirstInArray ||
                stack_.back() == State::kInArray)
        << "object members need Key() first";
    if (stack_.back() == State::kInArray) out_ += ',';
    stack_.back() = State::kInArray;
  }

  void AppendEscaped(const std::string& text) {
    out_ += '"';
    for (char c : text) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        case '\r':
          out_ += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out_ += StrFormat("\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<State> stack_;
  bool pending_key_ = false;
};

/// An immutable parsed JSON value. Object members keep their source order
/// (so batch scripts execute flags deterministically in the order written).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::vector<Member> members);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors die (RWDOM_CHECK) on type mismatch; check first.
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& array() const;
  const std::vector<Member>& object() const;

  /// First member named `key`, or nullptr (object values only).
  const JsonValue* Find(const std::string& key) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Shared so JsonValue stays cheaply copyable; parsed values are
  // immutable, so the sharing is invisible.
  std::shared_ptr<const std::vector<JsonValue>> array_;
  std::shared_ptr<const std::vector<Member>> object_;
};

/// Parses `text` as exactly one JSON value (leading/trailing whitespace
/// allowed, trailing garbage is an error). Errors carry a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace rwdom

#endif  // RWDOM_UTIL_JSON_H_
