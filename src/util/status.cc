#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace rwdom {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace rwdom
