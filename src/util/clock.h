// Injectable monotonic time for deadline enforcement.
//
// The serving stack checks request deadlines "is it too late to keep
// working on this?" at dispatch boundaries. Wall-clock reads make those
// checks untestable (a test cannot make 50ms pass deterministically), so
// every deadline consumer takes a `const Clock*` and production passes
// SystemClock::Get(). Tests pass a FakeClock and advance it by hand (or
// let it auto-advance per read, which makes "the request ran long"
// reproducible to the nanosecond).
//
// Deadline is a value type over that clock: a fixed instant, compared
// against Clock::NowNanos(). It deliberately does not capture the clock
// pointer — a Deadline is data, the clock is context — so deadlines can
// cross threads without aliasing concerns.
//
// Transport-level timeouts (poll() on a socket) necessarily run on the
// OS clock and are out of scope here; see SendAllWithin in util/socket.h.
#ifndef RWDOM_UTIL_CLOCK_H_
#define RWDOM_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace rwdom {

/// Monotonic nanosecond clock. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() const = 0;
};

/// The process-wide steady clock (never nullptr, never destroyed).
class SystemClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  static const SystemClock* Get() {
    static const SystemClock clock;
    return &clock;
  }
};

/// Test clock: starts at a fixed instant, moves only when told to.
/// `set_auto_advance_millis(ms)` makes every NowNanos() read advance time
/// by `ms` afterwards — the deterministic stand-in for "the work between
/// two clock reads took ms milliseconds".
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_nanos = 0) : now_nanos_(start_nanos) {}

  int64_t NowNanos() const override {
    return now_nanos_.fetch_add(auto_advance_nanos_.load());
  }

  void AdvanceMillis(int64_t millis) {
    now_nanos_.fetch_add(millis * 1'000'000);
  }

  void set_auto_advance_millis(int64_t millis) {
    auto_advance_nanos_.store(millis * 1'000'000);
  }

 private:
  mutable std::atomic<int64_t> now_nanos_;
  std::atomic<int64_t> auto_advance_nanos_{0};
};

/// A fixed instant on some Clock; kInfinitePast/never semantics via
/// Infinite(). Cheap to copy, safe to share across threads.
class Deadline {
 public:
  /// Never expires (the "no --request_timeout_ms configured" value).
  static Deadline Infinite() {
    return Deadline(std::numeric_limits<int64_t>::max());
  }

  /// `millis` from `clock`'s current time. Non-positive millis means an
  /// already-expired deadline (useful for "fail everything" tests).
  static Deadline AfterMillis(const Clock& clock, int64_t millis) {
    return Deadline(clock.NowNanos() + millis * 1'000'000);
  }

  bool infinite() const {
    return nanos_ == std::numeric_limits<int64_t>::max();
  }

  bool Expired(const Clock& clock) const {
    return !infinite() && clock.NowNanos() >= nanos_;
  }

  /// Time left, floored at 0; infinite deadlines report int64 max.
  int64_t RemainingMillis(const Clock& clock) const {
    if (infinite()) return std::numeric_limits<int64_t>::max();
    const int64_t remaining = nanos_ - clock.NowNanos();
    return remaining <= 0 ? 0 : remaining / 1'000'000;
  }

 private:
  explicit Deadline(int64_t nanos) : nanos_(nanos) {}
  int64_t nanos_;
};

}  // namespace rwdom

#endif  // RWDOM_UTIL_CLOCK_H_
