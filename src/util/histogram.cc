#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/strings.h"

namespace rwdom {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

IntHistogram::IntHistogram(int64_t max_value)
    : buckets_(static_cast<size_t>(max_value) + 1, 0) {
  RWDOM_CHECK_GE(max_value, 0);
}

void IntHistogram::Add(int64_t value) {
  RWDOM_DCHECK_GE(value, 0);
  ++total_;
  if (value < 0 || static_cast<size_t>(value) >= buckets_.size()) {
    ++overflow_;
    return;
  }
  ++buckets_[static_cast<size_t>(value)];
}

int64_t IntHistogram::BucketCount(int64_t value) const {
  if (value < 0 || static_cast<size_t>(value) >= buckets_.size()) return 0;
  return buckets_[static_cast<size_t>(value)];
}

int64_t IntHistogram::Quantile(double quantile) const {
  RWDOM_CHECK(quantile >= 0.0 && quantile <= 1.0);
  if (total_ == 0) return 0;
  int64_t target = static_cast<int64_t>(
      std::ceil(quantile * static_cast<double>(total_)));
  target = std::max<int64_t>(target, 1);
  int64_t running = 0;
  for (size_t v = 0; v < buckets_.size(); ++v) {
    running += buckets_[v];
    if (running >= target) return static_cast<int64_t>(v);
  }
  return static_cast<int64_t>(buckets_.size());  // Overflow bucket.
}

std::string IntHistogram::ToString(int max_rows) const {
  std::string out;
  int rows = 0;
  int64_t peak = 1;
  for (int64_t c : buckets_) peak = std::max(peak, c);
  for (size_t v = 0; v < buckets_.size() && rows < max_rows; ++v) {
    if (buckets_[v] == 0) continue;
    int bar = static_cast<int>(
        40.0 * static_cast<double>(buckets_[v]) / static_cast<double>(peak));
    out += StrFormat("%6zu | %10lld | %s\n", v,
                     static_cast<long long>(buckets_[v]),
                     std::string(static_cast<size_t>(bar), '#').c_str());
    ++rows;
  }
  if (overflow_ > 0) {
    out += StrFormat("  over | %10lld |\n", static_cast<long long>(overflow_));
  }
  return out;
}

}  // namespace rwdom
