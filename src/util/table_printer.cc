#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"
#include "util/strings.h"

namespace rwdom {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  RWDOM_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddMixedRow(const std::string& label,
                               const std::vector<double>& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size() + 1);
  fields.push_back(label);
  for (double v : row) fields.push_back(StrFormat("%.4g", v));
  AddRow(std::move(fields));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string* out) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) *out += "  ";
      *out += row[c];
      out->append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing spaces.
    while (!out->empty() && out->back() == ' ') out->pop_back();
    *out += "\n";
  };
  std::string out;
  emit_row(headers_, &out);
  std::string separator;
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) separator += "  ";
    separator.append(widths[c], '-');
  }
  out += separator + "\n";
  for (const auto& row : rows_) emit_row(row, &out);
  return out;
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace rwdom
