#include "util/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <chrono>
#include <cstdint>

#include "util/fault.h"
#include "util/strings.h"

namespace rwdom {

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + ::strerror(errno));
}

// IPv4 only, by design: "localhost" and dotted-quad addresses. The
// serving story is loopback smoke tests and LAN deployments behind a
// proxy; name resolution belongs to that proxy.
Result<in_addr> ResolveHost(const std::string& host) {
  in_addr addr{};
  const std::string spelled =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, spelled.c_str(), &addr) != 1) {
    return Status::InvalidArgument(
        "cannot parse host (IPv4 dotted quad or localhost): " + host);
  }
  return addr;
}

}  // namespace

Result<WakePipe> MakeWakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) return Errno("pipe");
  WakePipe pipe;
  pipe.read_end.reset(fds[0]);
  pipe.write_end.reset(fds[1]);
  return pipe;
}

void PokeWakePipe(int write_fd) {
  // Async-signal-safe by POSIX; a full pipe is fine (the wake already
  // pends) and EINTR needs no retry for the same reason.
  const char byte = 'w';
  [[maybe_unused]] ssize_t ignored = ::write(write_fd, &byte, 1);
}

void DrainWakePipe(int read_fd) {
  char buf[64];
  while (::read(read_fd, buf, sizeof(buf)) > 0) {
  }
}

Result<UniqueFd> TcpListen(const std::string& host, int port, int backlog) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument(
        StrFormat("port must be in [0, 65535], got %d", port));
  }
  RWDOM_ASSIGN_OR_RETURN(in_addr addr, ResolveHost(host));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  sa.sin_addr = addr;
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    return Errno(StrFormat("bind %s:%d", host.c_str(), port));
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  return fd;
}

Result<int> LocalPort(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(sa.sin_port));
}

Result<UniqueFd> TcpConnect(const std::string& host, int port) {
  RWDOM_ASSIGN_OR_RETURN(in_addr addr, ResolveHost(host));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  sa.sin_addr = addr;
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno(StrFormat("connect %s:%d", host.c_str(), port));
  return fd;
}

Result<std::optional<UniqueFd>> AcceptWithWake(int listen_fd, int wake_fd) {
  for (;;) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {wake_fd, POLLIN, 0}};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (fds[1].revents != 0) return std::optional<UniqueFd>();
    if (fds[0].revents == 0) continue;
    int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Errno("accept");
    }
    return std::optional<UniqueFd>(UniqueFd(client));
  }
}

Status SendAll(int fd, std::string_view data) {
  RWDOM_RETURN_IF_ERROR(FaultPoint("socket.send"));
  while (!data.empty()) {
    ssize_t sent = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data.remove_prefix(static_cast<size_t>(sent));
  }
  return Status::OK();
}

Status SendAllWithin(int fd, std::string_view data, int timeout_ms) {
  if (timeout_ms <= 0) return SendAll(fd, data);
  RWDOM_RETURN_IF_ERROR(FaultPoint("socket.send"));
  // OS clock by necessity: poll() timeouts are kernel time. Budget is
  // total across the whole payload, not per write.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!data.empty()) {
    ssize_t sent =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
    if (sent > 0) {
      data.remove_prefix(static_cast<size_t>(sent));
      continue;
    }
    if (sent < 0 && errno != EINTR && errno != EAGAIN &&
        errno != EWOULDBLOCK) {
      return Errno("send");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::DeadlineExceeded(
          StrFormat("send stalled past %d ms write timeout", timeout_ms));
    }
    pollfd pfd{fd, POLLOUT, 0};
    int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc < 0 && errno != EINTR) return Errno("poll");
  }
  return Status::OK();
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Result<size_t> SendSome(int fd, std::string_view data) {
  for (;;) {
    ssize_t sent =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
    if (sent >= 0) return static_cast<size_t>(sent);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Errno("send");
  }
}

Result<size_t> RecvSome(int fd, char* buf, size_t capacity, bool* eof) {
  *eof = false;
  for (;;) {
    ssize_t got = ::recv(fd, buf, capacity, MSG_DONTWAIT);
    if (got > 0) return static_cast<size_t>(got);
    if (got == 0) {
      *eof = true;
      return size_t{0};
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Errno("recv");
  }
}

#ifdef __linux__

Result<EpollSet> EpollSet::Create() {
  int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) return Errno("epoll_create1");
  return EpollSet(UniqueFd(fd));
}

namespace {

uint32_t InterestMask(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}

Status EpollCtl(int epoll_fd, int op, int fd, uint32_t events,
                const char* what) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd, op, fd, &ev) != 0) return Errno(what);
  return Status::OK();
}

}  // namespace

Status EpollSet::Add(int fd, bool want_read, bool want_write) {
  return EpollCtl(epoll_fd_.get(), EPOLL_CTL_ADD, fd,
                  InterestMask(want_read, want_write), "epoll_ctl(ADD)");
}

Status EpollSet::Modify(int fd, bool want_read, bool want_write) {
  return EpollCtl(epoll_fd_.get(), EPOLL_CTL_MOD, fd,
                  InterestMask(want_read, want_write), "epoll_ctl(MOD)");
}

Status EpollSet::Remove(int fd) {
  epoll_event ev{};  // Ignored for DEL, but pre-2.6.9 kernels want it.
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, &ev) != 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return Status::OK();
}

Result<int> EpollSet::Wait(std::vector<ReadyEvent>* out, int timeout_ms) {
  epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_.get(), events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Errno("epoll_wait");
  out->clear();
  for (int i = 0; i < n; ++i) {
    ReadyEvent ready;
    ready.fd = events[i].data.fd;
    ready.readable = (events[i].events & EPOLLIN) != 0;
    ready.writable = (events[i].events & EPOLLOUT) != 0;
    ready.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    out->push_back(ready);
  }
  return n;
}

#else  // !__linux__

Result<EpollSet> EpollSet::Create() {
  return Status::Unimplemented("epoll is Linux-only; use --io=threaded");
}
Status EpollSet::Add(int, bool, bool) {
  return Status::Unimplemented("epoll is Linux-only");
}
Status EpollSet::Modify(int, bool, bool) {
  return Status::Unimplemented("epoll is Linux-only");
}
Status EpollSet::Remove(int) {
  return Status::Unimplemented("epoll is Linux-only");
}
Result<int> EpollSet::Wait(std::vector<ReadyEvent>*, int) {
  return Status::Unimplemented("epoll is Linux-only");
}

#endif  // __linux__

LineDecoder::Event LineDecoder::Next(std::string* line) {
  for (;;) {
    size_t newline = buffer_.find('\n');
    if (discarding_) {
      // Resync after an overlong line: drop bytes through its newline.
      if (newline == std::string::npos) {
        buffer_.clear();
        return Event::kNeedMore;
      }
      buffer_.erase(0, newline + 1);
      discarding_ = false;
      continue;
    }
    if (newline != std::string::npos) {
      if (newline > max_line_bytes_) {
        buffer_.erase(0, newline + 1);
        return Event::kOverflow;
      }
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return Event::kLine;
    }
    if (buffer_.size() > max_line_bytes_) {
      // No newline yet and already over budget: report the overflow now
      // and discard until the line eventually terminates.
      buffer_.clear();
      discarding_ = true;
      return Event::kOverflow;
    }
    if (eof_ && !buffer_.empty()) {
      // Unterminated trailing line: deliver it, then finished() holds.
      *line = std::move(buffer_);
      buffer_.clear();
      return Event::kLine;
    }
    return Event::kNeedMore;
  }
}

Result<LineReader::Outcome> LineReader::ReadLine(
    std::string* line, const std::function<bool()>& cancelled,
    int poll_interval_ms) {
  for (;;) {
    switch (decoder_.Next(line)) {
      case LineDecoder::Event::kLine:
        return Outcome::kLine;
      case LineDecoder::Event::kOverflow:
        return Outcome::kOverflow;
      case LineDecoder::Event::kNeedMore:
        break;
    }
    if (decoder_.finished()) return Outcome::kEof;
    if (cancelled) {
      pollfd pfd{fd_, POLLIN, 0};
      int rc = ::poll(&pfd, 1, poll_interval_ms);
      if (rc < 0 && errno != EINTR) return Errno("poll");
      if (cancelled()) return Outcome::kCancelled;
      if (rc <= 0) continue;  // Timeout or EINTR: poll again.
    }
    char chunk[4096];
    ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (got == 0) {
      decoder_.NotifyEof();
      continue;
    }
    decoder_.Append(std::string_view(chunk, static_cast<size_t>(got)));
  }
}

}  // namespace rwdom
