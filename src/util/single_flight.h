// Single-flight execution: N concurrent callers asking for the same key
// trigger exactly one execution of the expensive producer; the other N-1
// block until the leader finishes and share its result.
//
// This is the concurrency half of a build-once cache (the QueryContext's
// walk-index map): a plain mutex-guarded map either serializes every
// build (lock held across the build) or duplicates work (lock released
// during the build). SingleFlightGroup keys the in-flight calls, so
// distinct keys build in parallel while duplicate keys coalesce — the
// Go `singleflight` package's contract, shaped for shared_ptr caches.
//
// Usage:
//   SingleFlightGroup<Key, const Artifact> flights;
//   std::shared_ptr<const Artifact> artifact =
//       flights.Do(key, [&] { return BuildArtifact(key); });
//
// The producer runs on the leader's thread with no SingleFlightGroup
// lock held. If it throws, every waiter of that flight rethrows the same
// exception and the flight is forgotten (the next caller retries).
// Producers are responsible for their own idempotence across *sequential*
// calls — the group only dedupes calls that overlap in time; pair it
// with a cache re-check inside the producer for a complete memo.
#ifndef RWDOM_UTIL_SINGLE_FLIGHT_H_
#define RWDOM_UTIL_SINGLE_FLIGHT_H_

#include <condition_variable>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace rwdom {

template <typename Key, typename Value>
class SingleFlightGroup {
 public:
  SingleFlightGroup() = default;
  SingleFlightGroup(const SingleFlightGroup&) = delete;
  SingleFlightGroup& operator=(const SingleFlightGroup&) = delete;

  /// Returns producer()'s result for `key`, executing the producer on
  /// this thread unless another thread is already producing the same key,
  /// in which case blocks and shares that thread's result (or rethrows
  /// its exception).
  std::shared_ptr<Value> Do(
      const Key& key,
      const std::function<std::shared_ptr<Value>()>& producer) {
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      auto [it, inserted] =
          flights_.try_emplace(key, std::make_shared<Flight>());
      flight = it->second;
      leader = inserted;
    }
    if (!leader) {
      std::unique_lock<std::mutex> lock(flight->mutex);
      flight->cv.wait(lock, [&] { return flight->done; });
      if (flight->error) std::rethrow_exception(flight->error);
      return flight->value;
    }
    // Leader: run the producer unlocked, publish, wake waiters, retire
    // the flight so later callers start fresh.
    std::shared_ptr<Value> value;
    std::exception_ptr error;
    try {
      value = producer();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(flight->mutex);
      flight->value = value;
      flight->error = error;
      flight->done = true;
    }
    flight->cv.notify_all();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      auto it = flights_.find(key);
      if (it != flights_.end() && it->second == flight) flights_.erase(it);
    }
    if (error) std::rethrow_exception(error);
    return value;
  }

 private:
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<Value> value;
    std::exception_ptr error;
  };

  std::mutex mutex_;
  std::map<Key, std::shared_ptr<Flight>> flights_;
};

}  // namespace rwdom

#endif  // RWDOM_UTIL_SINGLE_FLIGHT_H_
