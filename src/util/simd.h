// SIMD tally kernels for the posting-scan hot paths, behind a runtime
// dispatch seam.
//
// Three kernels cover every postings consumer:
//   TallySavings   - Problem 1 gain:  sum_k max(0, d[ids[k]] - weights[k])
//   TallyZeros     - Problem 2 gain:  #{k : d[ids[k]] == 0}
//   TallyFirstHits - sampled eval:    first flagged position per walk row
//
// All accumulation is integral (int64), so scalar, SSE4.2 and AVX2
// variants return bit-identical results by construction — the consumers
// convert to double exactly once per aggregate. The implementation level
// is picked once at first use: the RWDOM_SIMD environment variable
// (scalar | sse42 | avx2 | auto, default auto) clamped to what the CPU
// supports; non-x86 builds always run scalar. SetSimdLevelForTest rebinds
// the kernels mid-process for differential tests and benchmarks.
#ifndef RWDOM_UTIL_SIMD_H_
#define RWDOM_UTIL_SIMD_H_

#include <cstdint>

namespace rwdom {

enum class SimdLevel { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// The level the kernels below currently run at.
SimdLevel ActiveSimdLevel();

/// "scalar", "sse42" or "avx2".
const char* SimdLevelName(SimdLevel level);

/// Highest level this CPU supports (compile-time scalar on non-x86).
SimdLevel MaxSupportedSimdLevel();

/// Rebinds the kernels to `level` (clamped to CPU support; returns the
/// level actually bound). Test/bench hook — not thread-safe against
/// concurrent kernel calls.
SimdLevel SetSimdLevelForTest(SimdLevel level);

/// sum over k in [0, count) of max(0, d_row[ids[k]] - weights[k]).
/// Every ids[k] must index into d_row; values are int32, sum is exact.
int64_t TallySavings(const int32_t* d_row, const int32_t* ids,
                     const int32_t* weights, int32_t count);

/// Number of k in [0, count) with d_row[ids[k]] == 0.
int64_t TallyZeros(const int32_t* d_row, const int32_t* ids, int32_t count);

/// Result of a first-hit scan over a batch of walks.
struct FirstHitTally {
  int64_t hits = 0;          ///< Rows with at least one flagged position.
  int64_t hit_time_sum = 0;  ///< Sum of first flagged indices over hit rows.
};

/// Bytes past the last valid node id that `flags` must keep readable:
/// the AVX2 variant gathers 4-byte lanes from a byte array.
/// NodeFlagSet::flags_data() guarantees this padding.
inline constexpr int32_t kFlagsPadBytes = 3;

/// Scans `num_rows` rows of `row_len` node ids each (row-major, rows[r *
/// row_len + t]): per row, the first t with flags[row[t]] != 0 counts as a
/// hit at time t. Rows and flags are read-only; every id must be a valid
/// flags index (with kFlagsPadBytes of readable slack after the last).
FirstHitTally TallyFirstHits(const uint8_t* flags, const int32_t* rows,
                             int64_t num_rows, int32_t row_len);

}  // namespace rwdom

#endif  // RWDOM_UTIL_SIMD_H_
